//! Timeline analysis: critical-path extraction, token-lifetime histograms
//! and cycle histograms.
//!
//! The critical path is computed as a *backward walk* over the recorded
//! event stream, starting at the kernel's `kernel_finish` and chasing, at
//! each step, whichever gate most recently released the work that is
//! currently blocking: a token capture (the operand arrived), an
//! instruction issue (the instruction arrived), or the previous ALU fire
//! at the same node (structural serialization). Every step pushes segments
//! that exactly tile the interval it traverses, so the per-category cycle
//! attribution sums to the total kernel latency *by construction* — a
//! property the CI smoke gate asserts.

use crate::event::{EventKind, FireDest, TraceEvent, NO_DEP};

/// Traffic-class code for instruction packets (mirrors
/// `TrafficClass::SnackInstruction.code()` without importing the noc crate).
const CLASS_INSTR: u8 = 1;

/// What a span of the critical path was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PathCategory {
    /// CPM-side dispatch plus zero-load instruction transit.
    Fetch,
    /// An ALU/MAC fire occupying its op latency.
    Compute,
    /// A data token circulating the ring between producer fire and capture.
    RingWait,
    /// Token parked in CPM overflow storage (ALO congestion spill).
    Spill,
    /// Instruction-packet transit beyond the zero-load estimate
    /// (VC-allocation / switch contention in the mesh).
    VcStall,
    /// Instruction resident in the RCU waiting to fire (operand wait or
    /// ALU serialization behind an earlier fire).
    RcuQueue,
    /// Final output settling between last fire completion and CPM finish.
    Writeback,
    /// Cycles the walk could not attribute (buffer drops, missing events).
    Unattributed,
}

impl PathCategory {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            PathCategory::Fetch => "fetch",
            PathCategory::Compute => "compute",
            PathCategory::RingWait => "ring-wait",
            PathCategory::Spill => "spill",
            PathCategory::VcStall => "vc-stall",
            PathCategory::RcuQueue => "rcu-queue",
            PathCategory::Writeback => "writeback",
            PathCategory::Unattributed => "unattributed",
        }
    }

    /// All categories in report order.
    pub const ALL: [PathCategory; 8] = [
        PathCategory::Fetch,
        PathCategory::Compute,
        PathCategory::RingWait,
        PathCategory::Spill,
        PathCategory::VcStall,
        PathCategory::RcuQueue,
        PathCategory::Writeback,
        PathCategory::Unattributed,
    ];
}

/// One half-open `[start, end)` span of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSegment {
    /// First cycle of the span.
    pub start: u64,
    /// One past the last cycle of the span.
    pub end: u64,
    /// What the span was spent on.
    pub category: PathCategory,
}

impl PathSegment {
    /// Span length in cycles.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// True when the span is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// A critical path: an exact tiling of `[submit, finish)` into segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Kernel submit cycle (path start).
    pub submit: u64,
    /// Kernel finish cycle (path end).
    pub finish: u64,
    /// Tiling segments, sorted by start cycle.
    pub segments: Vec<PathSegment>,
}

impl CriticalPath {
    /// Total kernel latency in cycles.
    pub fn total(&self) -> u64 {
        self.finish.saturating_sub(self.submit)
    }

    /// Sum of all segment lengths — equals [`CriticalPath::total`] by
    /// construction of the backward walk.
    pub fn attributed_total(&self) -> u64 {
        self.segments.iter().map(PathSegment::len).sum()
    }

    /// Cycles per category, in [`PathCategory::ALL`] order.
    pub fn by_category(&self) -> Vec<(PathCategory, u64)> {
        PathCategory::ALL
            .iter()
            .map(|&cat| {
                let cycles = self
                    .segments
                    .iter()
                    .filter(|s| s.category == cat)
                    .map(PathSegment::len)
                    .sum();
                (cat, cycles)
            })
            .collect()
    }

    /// Render a text report: per-category cycles, share of total, and the
    /// segment list.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.total().max(1);
        let _ = writeln!(
            out,
            "critical path: submit @{} -> finish @{} ({} cycles)",
            self.submit,
            self.finish,
            self.total()
        );
        for (cat, cycles) in self.by_category() {
            if cycles == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<13} {:>8} cycles  ({:>3}%)",
                cat.name(),
                cycles,
                cycles * 100 / total
            );
        }
        let _ = writeln!(out, "  {:<13} {:>8} cycles  (sum)", "total", self.attributed_total());
        out
    }
}

/// Walk state: segments pushed backward, then sorted.
struct Walk {
    submit: u64,
    segments: Vec<PathSegment>,
}

impl Walk {
    /// Push `[start, end)` clamped to begin no earlier than `submit`.
    /// Returns the clamped start (the new cursor).
    fn push(&mut self, category: PathCategory, start: u64, end: u64) -> u64 {
        let start = start.max(self.submit).min(end);
        if start < end {
            self.segments.push(PathSegment { start, end, category });
        }
        start
    }
}

/// Extract the critical path from a merged event stream.
///
/// `pipeline_stages` is the router pipeline depth used for the zero-load
/// transit estimate (`hops * stages + flits + 1`); instruction-packet
/// transit beyond that estimate is attributed to [`PathCategory::VcStall`].
///
/// Returns `None` when the stream has no `kernel_submit`/`kernel_finish`
/// pair to anchor the walk.
pub fn critical_path(events: &[TraceEvent], pipeline_stages: u64) -> Option<CriticalPath> {
    // Anchors: last submit, then last finish at-or-after it.
    let submit = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::KernelSubmit { .. } => Some(e.cycle),
            _ => None,
        })
        .max()?;
    let finish = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::KernelFinish { .. } if e.cycle >= submit => Some(e.cycle),
            _ => None,
        })
        .max()?;

    let mut walk = Walk { submit, segments: Vec::new() };

    // Terminal fire: the latest output-producing fire inside the window.
    let last_output = events
        .iter()
        .filter(|e| (submit..=finish).contains(&e.cycle))
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::RcuFire { dest: FireDest::Output { .. }, .. }
            )
        })
        .max_by_key(|e| e.cycle);

    let mut cursor = finish;
    let mut current = match last_output {
        Some(ev) => {
            if let EventKind::RcuFire { latency, .. } = ev.kind {
                let fire_end = (ev.cycle + latency).min(finish);
                cursor = walk.push(PathCategory::Writeback, fire_end, cursor);
                cursor = walk.push(PathCategory::Compute, ev.cycle, cursor);
                Some(*ev)
            } else {
                None
            }
        }
        None => None,
    };

    let cap = events.len() + 4;
    let mut steps = 0usize;
    while cursor > submit {
        steps += 1;
        if steps > cap {
            break;
        }
        let Some(fire) = current else { break };
        let EventKind::RcuFire { node, sub_block, seq, deps, .. } = fire.kind else { break };

        // Gate 1: latest capture of one of this fire's operand deps.
        let capture = events
            .iter()
            .filter(|e| e.cycle <= cursor)
            .filter(|e| match e.kind {
                EventKind::RcuCapture { node: n, dep, .. } => {
                    n == node && dep != NO_DEP && (dep == deps[0] || dep == deps[1])
                }
                _ => false,
            })
            .max_by_key(|e| e.cycle);

        // Gate 2: this instruction's issue into the RCU.
        let issue = events
            .iter()
            .filter(|e| e.cycle <= cursor)
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::RcuIssue { node: n, sub_block: sb, seq: sq }
                        if n == node && sb == sub_block && sq == seq
                )
            })
            .max_by_key(|e| e.cycle);

        // Gate 3: previous fire at the same node (ALU serialization).
        let prev_fire = events
            .iter()
            .filter(|e| e.cycle < fire.cycle)
            .filter(|e| matches!(e.kind, EventKind::RcuFire { node: n, .. } if n == node))
            .max_by_key(|e| e.cycle);

        let gate_cycle = |o: &Option<&TraceEvent>| o.map(|e| e.cycle);
        let c_cap = gate_cycle(&capture);
        let c_iss = gate_cycle(&issue);
        let c_prev = gate_cycle(&prev_fire);
        let best = [c_cap, c_iss, c_prev].into_iter().flatten().max();

        match best {
            Some(g) if Some(g) == c_cap => {
                let cap_ev = match capture {
                    Some(e) => *e,
                    None => break,
                };
                let EventKind::RcuCapture { dep, .. } = cap_ev.kind else { break };
                // From capture to fire: operand was here, instr waited.
                cursor = walk.push(PathCategory::RcuQueue, cap_ev.cycle, cursor);
                // Producer of the captured token.
                let producer = events
                    .iter()
                    .filter(|e| e.cycle <= cap_ev.cycle)
                    .filter(|e| {
                        matches!(
                            e.kind,
                            EventKind::RcuFire { dest: FireDest::Token { dep: d }, .. }
                                if d == dep
                        )
                    })
                    .max_by_key(|e| e.cycle);
                match producer {
                    Some(p) => {
                        let EventKind::RcuFire { latency, .. } = p.kind else { break };
                        let p_end = (p.cycle + latency).min(cursor);
                        // Ring interval [p_end, cursor): tile spill windows
                        // for this dep, remainder is ring-wait.
                        tile_ring_interval(&mut walk, events, dep, p_end, cursor);
                        cursor = p_end.max(walk.submit);
                        cursor = walk.push(PathCategory::Compute, p.cycle, cursor);
                        current = Some(*p);
                    }
                    None => {
                        // Producer fire fell out of the ring buffer.
                        cursor = walk.push(PathCategory::Unattributed, submit, cursor);
                        break;
                    }
                }
            }
            Some(g) if Some(g) == c_iss => {
                let iss_ev = match issue {
                    Some(e) => *e,
                    None => break,
                };
                // Issue -> fire: resident in RCU waiting for operands/ALU.
                cursor = walk.push(PathCategory::RcuQueue, iss_ev.cycle, cursor);
                // Instruction transit: the eject that delivered this issue.
                let eject = events
                    .iter()
                    .filter(|e| e.cycle == iss_ev.cycle)
                    .find(|e| {
                        matches!(
                            e.kind,
                            EventKind::PacketEject { node: n, class, .. }
                                if n == node && class == CLASS_INSTR
                        )
                    });
                match eject {
                    Some(e) => {
                        let EventKind::PacketEject { latency, hops, flits, .. } = e.kind else {
                            break;
                        };
                        let inject = e.cycle.saturating_sub(latency);
                        let zero_load = hops as u64 * pipeline_stages + flits + 1;
                        let excess = latency.saturating_sub(zero_load).min(latency);
                        // [inject, eject): zero-load part is fetch, the
                        // excess (contention) is vc-stall, stalls last.
                        cursor = walk.push(PathCategory::VcStall, cursor.saturating_sub(excess), cursor);
                        cursor = walk.push(PathCategory::Fetch, inject, cursor);
                        cursor = walk.push(PathCategory::Fetch, submit, cursor);
                    }
                    None => {
                        cursor = walk.push(PathCategory::Fetch, submit, cursor);
                    }
                }
                break;
            }
            Some(g) if Some(g) == c_prev => {
                let p = match prev_fire {
                    Some(e) => *e,
                    None => break,
                };
                let EventKind::RcuFire { latency, .. } = p.kind else { break };
                let p_end = (p.cycle + latency).min(cursor);
                cursor = walk.push(PathCategory::RcuQueue, p_end, cursor);
                cursor = walk.push(PathCategory::Compute, p.cycle, cursor);
                current = Some(p);
            }
            _ => {
                cursor = walk.push(PathCategory::Fetch, submit, cursor);
                break;
            }
        }
    }

    if cursor > submit {
        walk.push(PathCategory::Unattributed, submit, cursor);
    }

    let mut segments = walk.segments;
    segments.sort_by_key(|s| (s.start, s.end));
    Some(CriticalPath { submit, finish, segments })
}

/// Tile `[lo, hi)` of a token's ring transit into spill windows (from
/// `spill`/`refill` event pairs for `dep`) and ring-wait remainder.
fn tile_ring_interval(walk: &mut Walk, events: &[TraceEvent], dep: u32, lo: u64, hi: u64) {
    if hi <= lo.max(walk.submit) {
        return;
    }
    // Collect spill windows for this dep: each spill pairs with the first
    // refill at-or-after it (or stays open to `hi`).
    let mut windows: Vec<(u64, u64)> = Vec::new();
    let spills: Vec<u64> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::CpmSpill { dep: d, .. } if d == dep))
        .map(|e| e.cycle)
        .collect();
    for s in spills {
        let refill = events
            .iter()
            .filter(|e| e.cycle >= s)
            .filter(|e| matches!(e.kind, EventKind::CpmRefill { dep: d, .. } if d == dep))
            .map(|e| e.cycle)
            .min()
            .unwrap_or(hi);
        let (ws, we) = (s.max(lo), refill.min(hi));
        if ws < we {
            windows.push((ws, we));
        }
    }
    windows.sort_unstable();
    // Walk backward from hi, alternating ring-wait gaps and spill windows.
    let mut cursor = hi;
    for &(ws, we) in windows.iter().rev() {
        if we < cursor {
            cursor = walk.push(PathCategory::RingWait, we, cursor);
        }
        if ws < cursor {
            cursor = walk.push(PathCategory::Spill, ws, cursor);
        }
    }
    if lo.max(walk.submit) < cursor {
        walk.push(PathCategory::RingWait, lo, cursor);
    }
}

/// Per-token ring lifetime: `(dep, birth, death)` where birth is the first
/// `token_launch` and death the last `token_retire` for the dep. Tokens
/// without both endpoints in the buffer are skipped. Sorted by dep.
pub fn token_lifetimes(events: &[TraceEvent]) -> Vec<(u32, u64, u64)> {
    use std::collections::BTreeMap;
    let mut births: BTreeMap<u32, u64> = BTreeMap::new();
    let mut deaths: BTreeMap<u32, u64> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::TokenLaunch { dep, .. } => {
                births.entry(dep).or_insert(e.cycle);
            }
            EventKind::TokenRetire { dep, .. } => {
                let d = deaths.entry(dep).or_insert(e.cycle);
                *d = (*d).max(e.cycle);
            }
            _ => {}
        }
    }
    births
        .into_iter()
        .filter_map(|(dep, b)| deaths.get(&dep).map(|&d| (dep, b, d.max(b))))
        .collect()
}

/// A log2-bucketed cycle histogram (32 buckets, same shape as the noc
/// crate's latency histogram but dependency-free).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleHistogram {
    buckets: [u64; 32],
    samples: u64,
    max: u64,
}

impl CycleHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let b = (64 - value.leading_zeros()).min(31) as usize;
        self.buckets[b] += 1;
        self.samples += 1;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (bucket upper bound), `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.samples == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.samples as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let upper = if b == 0 { 0 } else { (1u64 << b) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Render non-empty buckets as `range: count` lines with a bar.
    pub fn render(&self, label: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} ({} samples, max {})", label, self.samples, self.max);
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (b, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let lo = if b == 0 { 0 } else { 1u64 << (b - 1) };
            let hi = if b == 0 { 0 } else { (1u64 << b) - 1 };
            let bar = "#".repeat(((count * 40) / peak).max(1) as usize);
            let _ = writeln!(out, "  [{:>8}..{:>8}] {:>8}  {}", lo, hi, count, bar);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind as K, FireDest, TraceEvent};

    fn ev(cycle: u64, kind: K) -> TraceEvent {
        TraceEvent { cycle, kind }
    }

    /// A synthetic two-instruction chain:
    ///   submit@0 -> cpm_issue -> inject -> eject@8 (lat 6, 2 hops, 1 flit)
    ///   -> issue@8 -> fire A @10 (lat 1, token dep 7) -> launch -> spill
    ///   @13..15 -> capture@18 at node 3 -> fire B @20 (lat 2, output)
    ///   -> finish@30
    fn chain() -> Vec<TraceEvent> {
        vec![
            ev(0, K::KernelSubmit { cpm: 0 }),
            ev(1, K::CpmIssue { cpm: 0, pe: 5, count: 1 }),
            ev(
                2,
                K::PacketInject { packet: 1, src: 0, dst: 5, vnet: 2, class: 1, flits: 1 },
            ),
            ev(
                8,
                K::PacketEject { packet: 1, node: 5, latency: 6, hops: 2, flits: 1, class: 1 },
            ),
            ev(8, K::RcuIssue { node: 5, sub_block: 0, seq: 0 }),
            ev(
                10,
                K::RcuFire {
                    node: 5,
                    sub_block: 0,
                    seq: 0,
                    op: 2,
                    latency: 1,
                    deps: [NO_DEP, NO_DEP],
                    dest: FireDest::Token { dep: 7 },
                },
            ),
            ev(11, K::TokenLaunch { dep: 7, seq: 0, from: 5, to: 6 }),
            ev(13, K::CpmSpill { cpm: 0, dep: 7 }),
            ev(15, K::CpmRefill { cpm: 0, dep: 7 }),
            ev(18, K::RcuCapture { node: 3, dep: 7, captured: 1 }),
            ev(18, K::TokenRetire { dep: 7, node: 3 }),
            ev(8, K::RcuIssue { node: 3, sub_block: 0, seq: 1 }),
            ev(
                20,
                K::RcuFire {
                    node: 3,
                    sub_block: 0,
                    seq: 1,
                    op: 0,
                    latency: 2,
                    deps: [7, NO_DEP],
                    dest: FireDest::Output { index: 0 },
                },
            ),
            ev(30, K::KernelFinish { cpm: 0 }),
        ]
    }

    #[test]
    fn critical_path_tiles_exactly() {
        let path = critical_path(&chain(), 2).expect("anchored path");
        assert_eq!(path.submit, 0);
        assert_eq!(path.finish, 30);
        assert_eq!(path.total(), 30);
        assert_eq!(
            path.attributed_total(),
            path.total(),
            "segments must tile [submit, finish): {:?}",
            path.segments
        );
        // Segments are sorted and contiguous.
        let mut prev_end = path.submit;
        for s in &path.segments {
            assert_eq!(s.start, prev_end, "gap before {:?}", s);
            prev_end = s.end;
        }
        assert_eq!(prev_end, path.finish);
    }

    #[test]
    fn critical_path_finds_expected_categories() {
        let path = critical_path(&chain(), 2).expect("anchored path");
        let by: std::collections::BTreeMap<_, _> = path.by_category().into_iter().collect();
        // Writeback: fire B ends at 22, finish 30 -> 8 cycles.
        assert_eq!(by[&PathCategory::Writeback], 8);
        // Compute: fire B [20,22) + fire A [10,11) -> 3 cycles.
        assert_eq!(by[&PathCategory::Compute], 3);
        // Spill window [13,15) -> 2 cycles.
        assert_eq!(by[&PathCategory::Spill], 2);
        // Ring: [11,13) + [15,18) -> 5 cycles.
        assert_eq!(by[&PathCategory::RingWait], 5);
        // VC stall: latency 6 vs zero-load 2*2+1+1=6 -> 0 excess.
        assert_eq!(by[&PathCategory::VcStall], 0);
        assert_eq!(by[&PathCategory::Unattributed], 0);
    }

    #[test]
    fn vc_stall_is_transit_excess_over_zero_load() {
        let mut events = chain();
        // Inflate the instruction packet latency: eject@8 with latency 6
        // becomes eject@8 latency 6 but zero-load shrinks via stages=1:
        // zl = 2*1+1+1 = 4 -> excess 2.
        let path = critical_path(&events, 1).expect("anchored path");
        let by: std::collections::BTreeMap<_, _> = path.by_category().into_iter().collect();
        assert_eq!(by[&PathCategory::VcStall], 2);
        assert_eq!(path.attributed_total(), path.total());
        // And with generous stages the stall vanishes.
        events.truncate(events.len()); // no-op, keep mutability meaningful
        let path = critical_path(&events, 3).expect("anchored path");
        let by: std::collections::BTreeMap<_, _> = path.by_category().into_iter().collect();
        assert_eq!(by[&PathCategory::VcStall], 0);
    }

    #[test]
    fn missing_anchors_yield_none() {
        assert!(critical_path(&[], 2).is_none());
        let only_submit = vec![ev(0, K::KernelSubmit { cpm: 0 })];
        assert!(critical_path(&only_submit, 2).is_none());
    }

    #[test]
    fn no_output_fire_attributes_everything_unattributed() {
        let events = vec![
            ev(5, K::KernelSubmit { cpm: 0 }),
            ev(25, K::KernelFinish { cpm: 0 }),
        ];
        let path = critical_path(&events, 2).expect("anchored path");
        assert_eq!(path.attributed_total(), 20);
        assert!(path
            .segments
            .iter()
            .all(|s| s.category == PathCategory::Unattributed));
    }

    #[test]
    fn token_lifetimes_pair_first_launch_with_last_retire() {
        let events = vec![
            ev(3, K::TokenLaunch { dep: 7, seq: 0, from: 1, to: 2 }),
            ev(9, K::TokenLaunch { dep: 7, seq: 1, from: 1, to: 2 }),
            ev(14, K::TokenRetire { dep: 7, node: 4 }),
            ev(5, K::TokenLaunch { dep: 9, seq: 0, from: 2, to: 3 }),
            // dep 9 never retires -> skipped
        ];
        assert_eq!(token_lifetimes(&events), vec![(7, 3, 14)]);
    }

    #[test]
    fn cycle_histogram_percentiles() {
        let mut h = CycleHistogram::new();
        assert_eq!(h.percentile(50.0), 0);
        h.record(10);
        assert_eq!(h.samples(), 1);
        assert_eq!(h.percentile(50.0), 10); // clamped to max
        for v in [1u64, 2, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.max(), 1000);
        assert!(h.percentile(100.0) >= 100);
        let rendered = h.render("t");
        assert!(rendered.contains("6 samples"));
    }
}
