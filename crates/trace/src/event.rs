//! Structured trace events.
//!
//! Events are deliberately primitive-typed (`u32`/`u64`/`u8`) so this crate
//! stays a zero-dependency leaf that both `snacknoc-noc` and `snacknoc-core`
//! can depend on without a cycle. Producers translate their own id types
//! (`NodeId`, `DepId`, `Direction`, …) into plain integers at the hook site.

/// Sentinel for "no dependency" in an operand slot of [`EventKind::RcuFire`].
pub const NO_DEP: u32 = u32::MAX;

/// The three instrumented component classes. Each maps to one Chrome
/// trace-event process lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComponentClass {
    /// NoC routers: packet/flit lifecycle and VC allocation.
    Router,
    /// RCU datapaths: instruction issue, operand match, ALU/MAC fire.
    Rcu,
    /// CPM control: kernel lifecycle, ALO congestion, overflow, watchdog.
    Cpm,
}

impl ComponentClass {
    /// Chrome trace-event process id for this lane.
    pub fn pid(self) -> u32 {
        match self {
            ComponentClass::Router => 1,
            ComponentClass::Rcu => 2,
            ComponentClass::Cpm => 3,
        }
    }

    /// Human-readable lane name (used in metadata events and reports).
    pub fn lane_name(self) -> &'static str {
        match self {
            ComponentClass::Router => "router",
            ComponentClass::Rcu => "rcu",
            ComponentClass::Cpm => "cpm",
        }
    }

    /// Stable index 0..3 for per-class arrays.
    pub fn index(self) -> usize {
        match self {
            ComponentClass::Router => 0,
            ComponentClass::Rcu => 1,
            ComponentClass::Cpm => 2,
        }
    }

    /// All classes, in lane order.
    pub const ALL: [ComponentClass; 3] =
        [ComponentClass::Router, ComponentClass::Rcu, ComponentClass::Cpm];
}

/// Where an RCU fire's result went — mirrors `ResultDest` without importing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FireDest {
    /// Accumulated into the local MAC register.
    Acc,
    /// Produced a circulating data token for `dep`.
    Token {
        /// Dependency id the produced token carries.
        dep: u32,
    },
    /// Wrote a final kernel output slot.
    Output {
        /// Output vector index.
        index: u32,
    },
}

/// One structured event. `cycle` is the simulator cycle at which the event
/// was recorded; span-like events (fires, ejections) additionally carry a
/// latency so exporters can reconstruct their start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulator cycle the event was recorded at.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Event taxonomy. See DESIGN.md §10 for the full narrative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented per-variant below
pub enum EventKind {
    /// A packet entered the network at `src` bound for `dst`.
    PacketInject { packet: u64, src: u32, dst: u32, vnet: u8, class: u8, flits: u32 },
    /// A router granted an output VC to an input VC (VA stage success).
    VcAlloc { router: u32, in_port: u8, in_vc: u8, out_port: u8, out_vc: u8 },
    /// A flit left a router on a non-local port (one link traversal).
    FlitHop { router: u32, out_port: u8, flit: u64, packet: u64 },
    /// A whole packet finished ejecting at `node`; `latency` is
    /// inject→eject in cycles, so the span started at `cycle - latency`.
    PacketEject { packet: u64, node: u32, latency: u64, hops: u32, flits: u64, class: u8 },

    /// An RCU accepted one instruction into sub-block `sub_block` slot `seq`.
    RcuIssue { node: u32, sub_block: u32, seq: u32 },
    /// An RCU instruction's operands matched and its ALU fired. `deps`
    /// holds the operand dep ids (or [`NO_DEP`]); `latency` is the op
    /// latency in cycles (the fire occupies `[cycle, cycle+latency)`).
    RcuFire { node: u32, sub_block: u32, seq: u32, op: u8, latency: u64, deps: [u32; 2], dest: FireDest },
    /// A circulating token for `dep` was captured by `captured` waiting
    /// operands at `node`.
    RcuCapture { node: u32, dep: u32, captured: u32 },

    /// A CPM issued `count` instructions toward PE `pe`.
    CpmIssue { cpm: u32, pe: u32, count: u32 },
    /// ALO congestion heuristic tripped: CPM entered overflow mode.
    CpmOverflowEnter { cpm: u32, free: u32, total: u32 },
    /// CPM left overflow mode (hysteresis satisfied).
    CpmOverflowExit { cpm: u32, free: u32, total: u32 },
    /// CPM absorbed (spilled) a circulating token for `dep` into overflow.
    CpmSpill { cpm: u32, dep: u32 },
    /// CPM replayed a spilled token for `dep` back onto the ring.
    CpmRefill { cpm: u32, dep: u32 },
    /// Token-loss watchdog declared `losses` token(s) lost this cycle.
    WatchdogDetect { cpm: u32, losses: u64 },
    /// Watchdog asked `producer` to retransmit the token for `dep`.
    WatchdogRetransmit { cpm: u32, dep: u32, producer: u32 },
    /// A data token for `dep` (retransmission `seq`) was launched from
    /// `from` toward ring successor `to`.
    TokenLaunch { dep: u32, seq: u32, from: u32, to: u32 },
    /// A data token for `dep` drained its dependents and was retired at `node`.
    TokenRetire { dep: u32, node: u32 },
    /// A kernel was submitted to `cpm`.
    KernelSubmit { cpm: u32 },
    /// `cpm` finished its kernel (results ready).
    KernelFinish { cpm: u32 },
    /// The platform resubmitted the kernel to `cpm` with `moved`
    /// instructions remapped off permanently dead RCUs (graceful
    /// degradation, attempt number `attempt`).
    KernelRemap { cpm: u32, attempt: u32, moved: u32 },
    /// The kernel's home CPM node died; the platform failed the kernel
    /// over from CPM `from` to standby corner CPM `to`.
    CpmFailover { from: u32, to: u32 },
}

impl EventKind {
    /// Which component-class lane this event belongs to.
    pub fn class(&self) -> ComponentClass {
        match self {
            EventKind::PacketInject { .. }
            | EventKind::VcAlloc { .. }
            | EventKind::FlitHop { .. }
            | EventKind::PacketEject { .. } => ComponentClass::Router,
            EventKind::RcuIssue { .. }
            | EventKind::RcuFire { .. }
            | EventKind::RcuCapture { .. } => ComponentClass::Rcu,
            _ => ComponentClass::Cpm,
        }
    }

    /// Stable event name for export and reports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PacketInject { .. } => "packet_inject",
            EventKind::VcAlloc { .. } => "vc_alloc",
            EventKind::FlitHop { .. } => "flit_hop",
            EventKind::PacketEject { .. } => "packet_eject",
            EventKind::RcuIssue { .. } => "rcu_issue",
            EventKind::RcuFire { .. } => "rcu_fire",
            EventKind::RcuCapture { .. } => "rcu_capture",
            EventKind::CpmIssue { .. } => "cpm_issue",
            EventKind::CpmOverflowEnter { .. } => "overflow_enter",
            EventKind::CpmOverflowExit { .. } => "overflow_exit",
            EventKind::CpmSpill { .. } => "spill",
            EventKind::CpmRefill { .. } => "refill",
            EventKind::WatchdogDetect { .. } => "watchdog_detect",
            EventKind::WatchdogRetransmit { .. } => "watchdog_retransmit",
            EventKind::TokenLaunch { .. } => "token_launch",
            EventKind::TokenRetire { .. } => "token_retire",
            EventKind::KernelSubmit { .. } => "kernel_submit",
            EventKind::KernelFinish { .. } => "kernel_finish",
            EventKind::KernelRemap { .. } => "kernel_remap",
            EventKind::CpmFailover { .. } => "cpm_failover",
        }
    }

    /// Chrome trace-event thread id within the lane: the component instance
    /// (router index, RCU node index, CPM index) the event happened at.
    pub fn tid(&self) -> u32 {
        match *self {
            EventKind::PacketInject { src, .. } => src,
            EventKind::VcAlloc { router, .. } => router,
            EventKind::FlitHop { router, .. } => router,
            EventKind::PacketEject { node, .. } => node,
            EventKind::RcuIssue { node, .. } => node,
            EventKind::RcuFire { node, .. } => node,
            EventKind::RcuCapture { node, .. } => node,
            EventKind::CpmIssue { cpm, .. } => cpm,
            EventKind::CpmOverflowEnter { cpm, .. } => cpm,
            EventKind::CpmOverflowExit { cpm, .. } => cpm,
            EventKind::CpmSpill { cpm, .. } => cpm,
            EventKind::CpmRefill { cpm, .. } => cpm,
            EventKind::WatchdogDetect { cpm, .. } => cpm,
            EventKind::WatchdogRetransmit { cpm, .. } => cpm,
            EventKind::TokenLaunch { from, .. } => from,
            EventKind::TokenRetire { node, .. } => node,
            EventKind::KernelSubmit { cpm } => cpm,
            EventKind::KernelFinish { cpm } => cpm,
            EventKind::KernelRemap { cpm, .. } => cpm,
            EventKind::CpmFailover { from, .. } => from,
        }
    }

    /// Key/value argument pairs for export (`args` object in Chrome
    /// trace-event JSON). Deterministic: fixed order per variant.
    pub fn args(&self) -> Vec<(&'static str, u64)> {
        match *self {
            EventKind::PacketInject { packet, src, dst, vnet, class, flits } => vec![
                ("packet", packet),
                ("src", src as u64),
                ("dst", dst as u64),
                ("vnet", vnet as u64),
                ("class", class as u64),
                ("flits", flits as u64),
            ],
            EventKind::VcAlloc { router, in_port, in_vc, out_port, out_vc } => vec![
                ("router", router as u64),
                ("in_port", in_port as u64),
                ("in_vc", in_vc as u64),
                ("out_port", out_port as u64),
                ("out_vc", out_vc as u64),
            ],
            EventKind::FlitHop { router, out_port, flit, packet } => vec![
                ("router", router as u64),
                ("out_port", out_port as u64),
                ("flit", flit),
                ("packet", packet),
            ],
            EventKind::PacketEject { packet, node, latency, hops, flits, class } => vec![
                ("packet", packet),
                ("node", node as u64),
                ("latency", latency),
                ("hops", hops as u64),
                ("flits", flits),
                ("class", class as u64),
            ],
            EventKind::RcuIssue { node, sub_block, seq } => vec![
                ("node", node as u64),
                ("sub_block", sub_block as u64),
                ("seq", seq as u64),
            ],
            EventKind::RcuFire { node, sub_block, seq, op, latency, deps, dest } => {
                let mut a = vec![
                    ("node", node as u64),
                    ("sub_block", sub_block as u64),
                    ("seq", seq as u64),
                    ("op", op as u64),
                    ("latency", latency),
                ];
                if deps[0] != NO_DEP {
                    a.push(("dep_l", deps[0] as u64));
                }
                if deps[1] != NO_DEP {
                    a.push(("dep_r", deps[1] as u64));
                }
                match dest {
                    FireDest::Acc => a.push(("acc", 1)),
                    FireDest::Token { dep } => a.push(("out_dep", dep as u64)),
                    FireDest::Output { index } => a.push(("out_index", index as u64)),
                }
                a
            }
            EventKind::RcuCapture { node, dep, captured } => vec![
                ("node", node as u64),
                ("dep", dep as u64),
                ("captured", captured as u64),
            ],
            EventKind::CpmIssue { cpm, pe, count } => vec![
                ("cpm", cpm as u64),
                ("pe", pe as u64),
                ("count", count as u64),
            ],
            EventKind::CpmOverflowEnter { cpm, free, total }
            | EventKind::CpmOverflowExit { cpm, free, total } => vec![
                ("cpm", cpm as u64),
                ("free_vcs", free as u64),
                ("total_vcs", total as u64),
            ],
            EventKind::CpmSpill { cpm, dep } | EventKind::CpmRefill { cpm, dep } => {
                vec![("cpm", cpm as u64), ("dep", dep as u64)]
            }
            EventKind::WatchdogDetect { cpm, losses } => {
                vec![("cpm", cpm as u64), ("losses", losses)]
            }
            EventKind::WatchdogRetransmit { cpm, dep, producer } => vec![
                ("cpm", cpm as u64),
                ("dep", dep as u64),
                ("producer", producer as u64),
            ],
            EventKind::TokenLaunch { dep, seq, from, to } => vec![
                ("dep", dep as u64),
                ("seq", seq as u64),
                ("from", from as u64),
                ("to", to as u64),
            ],
            EventKind::TokenRetire { dep, node } => {
                vec![("dep", dep as u64), ("node", node as u64)]
            }
            EventKind::KernelSubmit { cpm } | EventKind::KernelFinish { cpm } => {
                vec![("cpm", cpm as u64)]
            }
            EventKind::KernelRemap { cpm, attempt, moved } => vec![
                ("cpm", cpm as u64),
                ("attempt", attempt as u64),
                ("moved", moved as u64),
            ],
            EventKind::CpmFailover { from, to } => {
                vec![("from", from as u64), ("to", to as u64)]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_the_taxonomy() {
        let ev = EventKind::PacketInject { packet: 1, src: 0, dst: 3, vnet: 2, class: 1, flits: 1 };
        assert_eq!(ev.class(), ComponentClass::Router);
        let ev = EventKind::RcuFire {
            node: 5,
            sub_block: 0,
            seq: 1,
            op: 3,
            latency: 2,
            deps: [7, NO_DEP],
            dest: FireDest::Acc,
        };
        assert_eq!(ev.class(), ComponentClass::Rcu);
        let ev = EventKind::WatchdogDetect { cpm: 0, losses: 1 };
        assert_eq!(ev.class(), ComponentClass::Cpm);
    }

    #[test]
    fn args_are_fixed_order_and_skip_no_dep() {
        let ev = EventKind::RcuFire {
            node: 1,
            sub_block: 2,
            seq: 3,
            op: 0,
            latency: 1,
            deps: [NO_DEP, 9],
            dest: FireDest::Output { index: 4 },
        };
        let args = ev.args();
        let keys: Vec<&str> = args.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, ["node", "sub_block", "seq", "op", "latency", "dep_r", "out_index"]);
    }

    #[test]
    fn pids_are_stable() {
        assert_eq!(ComponentClass::Router.pid(), 1);
        assert_eq!(ComponentClass::Rcu.pid(), 2);
        assert_eq!(ComponentClass::Cpm.pid(), 3);
    }
}
