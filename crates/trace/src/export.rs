//! Chrome trace-event (Perfetto-loadable) JSON export.
//!
//! Emits the "JSON array format": a top-level array of event objects with
//! `name`/`ph`/`ts`/`pid`/`tid` fields, one process lane per component
//! class (pid 1 = router, 2 = rcu, 3 = cpm), plus `process_name` metadata
//! events so the lanes are labeled in the viewer. Timestamps are simulator
//! cycles rendered as integer microseconds — 1 cycle == 1 µs in the
//! viewer's timeline, which keeps the output byte-deterministic (no
//! floating point anywhere).

use std::fmt::Write as _;

use crate::event::{ComponentClass, EventKind, TraceEvent};
use crate::tracer::RingTracer;

/// Render a recorded trace as Chrome trace-event JSON.
///
/// Span-like events become `"X"` complete events with a `dur`:
/// * [`EventKind::RcuFire`] — `[cycle, cycle + latency)`,
/// * [`EventKind::PacketEject`] — reconstructed as `[cycle - latency, cycle)`.
///
/// Everything else becomes an `"i"` instant event (thread scope). Per-class
/// drop counters are appended as metadata-style instant events on each lane
/// so saturated traces are self-describing.
pub fn to_chrome_trace(tracer: &RingTracer) -> String {
    let events = tracer.merged_events();
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("[\n");

    // Lane metadata first: deterministic fixed order.
    for class in ComponentClass::ALL {
        let _ = writeln!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}},",
            class.pid(),
            class.lane_name()
        );
    }

    for ev in &events {
        write_event(&mut out, ev);
        out.push_str(",\n");
    }

    // Drop counters last, pinned at the trace's final cycle.
    let end = tracer.cycle_range().map(|(_, l)| l).unwrap_or(0);
    for (i, class) in ComponentClass::ALL.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"name\":\"dropped_events\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":0,\"s\":\"p\",\"args\":{{\"count\":{}}}}}",
            end,
            class.pid(),
            tracer.dropped(*class)
        );
        if i + 1 < ComponentClass::ALL.len() {
            out.push_str(",\n");
        }
    }

    out.push_str("\n]\n");
    out
}

fn write_event(out: &mut String, ev: &TraceEvent) {
    let kind = &ev.kind;
    let pid = kind.class().pid();
    let tid = kind.tid();
    let (ph, ts, dur) = match kind {
        EventKind::RcuFire { latency, .. } => ("X", ev.cycle, Some(*latency.max(&1))),
        EventKind::PacketEject { latency, .. } => {
            ("X", ev.cycle.saturating_sub(*latency), Some((*latency).max(1)))
        }
        _ => ("i", ev.cycle, None),
    };
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
        kind.name(),
        ph,
        ts,
        pid,
        tid
    );
    if let Some(d) = dur {
        let _ = write!(out, ",\"dur\":{}", d);
    }
    if ph == "i" {
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in kind.args().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", k, v);
    }
    out.push_str("}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FireDest;
    use crate::json::validate_chrome_trace;
    use crate::tracer::Tracer;

    fn sample_tracer() -> RingTracer {
        let mut t = RingTracer::new(64);
        t.record(0, EventKind::KernelSubmit { cpm: 0 });
        t.record(
            1,
            EventKind::PacketInject { packet: 7, src: 0, dst: 5, vnet: 2, class: 1, flits: 3 },
        );
        t.record(
            9,
            EventKind::PacketEject { packet: 7, node: 5, latency: 8, hops: 3, flits: 3, class: 1 },
        );
        t.record(
            10,
            EventKind::RcuFire {
                node: 5,
                sub_block: 0,
                seq: 0,
                op: 3,
                latency: 2,
                deps: [crate::event::NO_DEP; 2],
                dest: FireDest::Acc,
            },
        );
        t.record(20, EventKind::KernelFinish { cpm: 0 });
        t
    }

    #[test]
    fn export_parses_and_counts_all_lanes() {
        let json = to_chrome_trace(&sample_tracer());
        let summary = validate_chrome_trace(&json).expect("valid chrome trace");
        assert!(summary.router_events >= 2);
        assert!(summary.rcu_events >= 1);
        assert!(summary.cpm_events >= 2);
    }

    #[test]
    fn export_is_byte_stable() {
        let a = to_chrome_trace(&sample_tracer());
        let b = to_chrome_trace(&sample_tracer());
        assert_eq!(a, b);
    }

    #[test]
    fn eject_span_start_is_inject_cycle() {
        let json = to_chrome_trace(&sample_tracer());
        // latency 8 ending at cycle 9 -> span starts at ts=1 with dur=8.
        assert!(json.contains("\"name\":\"packet_eject\",\"ph\":\"X\",\"ts\":1,"));
        assert!(json.contains("\"dur\":8"));
    }

    #[test]
    fn empty_tracer_still_emits_valid_json_but_fails_validation() {
        let t = RingTracer::new(4);
        let json = to_chrome_trace(&t);
        assert!(crate::json::parse(&json).is_ok());
        assert!(validate_chrome_trace(&json).is_err(), "no real events -> invalid");
    }
}
