//! A small dependency-free JSON parser and a Chrome-trace validator.
//!
//! The workspace is hermetic (no serde), but the CI smoke gate must prove
//! the emitted `trace.json` actually *parses* and contains events on every
//! component lane. This module is that proof: a recursive-descent parser
//! for the full JSON grammar (sufficient for our own output and for any
//! well-formed trace) plus [`validate_chrome_trace`].

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (we only emit integers, but parse generally).
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs (duplicate keys preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse error with byte offset for debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { at: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, val: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected '{}'", lit)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(pairs)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{0008}'),
                    Some(b'f') => s.push('\u{000C}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or_else(|| self.err("bad \\u escape"))?;
                            let v = (d as char)
                                .to_digit(16)
                                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
                            code = code * 16 + v;
                        }
                        // Surrogates are not emitted by this workspace;
                        // map unpaired ones to U+FFFD rather than erroring.
                        s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-by-byte.
                    if b < 0x80 {
                        s.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = if b >= 0xF0 {
                            4
                        } else if b >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        let end = (start + len).min(self.bytes.len());
                        let chunk = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?;
                        s.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Summary of a validated Chrome trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceFileSummary {
    /// Non-metadata events on the router lane (pid 1).
    pub router_events: usize,
    /// Non-metadata events on the rcu lane (pid 2).
    pub rcu_events: usize,
    /// Non-metadata events on the cpm lane (pid 3).
    pub cpm_events: usize,
    /// Total non-metadata events.
    pub total_events: usize,
}

/// Parse `text` as Chrome trace-event JSON and require at least one real
/// (non-`"M"`, non-`dropped_events`) event on *every* component lane.
pub fn validate_chrome_trace(text: &str) -> Result<TraceFileSummary, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let events = doc.as_arr().ok_or("top level must be a JSON array")?;
    let mut summary = TraceFileSummary::default();
    for (i, ev) in events.iter().enumerate() {
        let obj = match ev {
            Json::Obj(_) => ev,
            _ => return Err(format!("event {} is not an object", i)),
        };
        let ph = obj
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {} missing \"ph\"", i))?;
        let name = obj
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {} missing \"name\"", i))?;
        if ph == "M" || name == "dropped_events" {
            continue;
        }
        obj.get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {} missing numeric \"ts\"", i))?;
        let pid = obj
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {} missing numeric \"pid\"", i))?;
        summary.total_events += 1;
        match pid as u32 {
            1 => summary.router_events += 1,
            2 => summary.rcu_events += 1,
            3 => summary.cpm_events += 1,
            other => return Err(format!("event {} has unknown pid {}", i, other)),
        }
    }
    if summary.router_events == 0 {
        return Err("no router-lane events in trace".to_string());
    }
    if summary.rcu_events == 0 {
        return Err("no rcu-lane events in trace".to_string());
    }
    if summary.cpm_events == 0 {
        return Err("no cpm-lane events in trace".to_string());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), Json::Num(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse("{\"a\":[1,{\"b\":false}],\"c\":\"x\"}").unwrap();
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1].get("b"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".to_string()));
    }

    #[test]
    fn validator_requires_all_three_lanes() {
        let two_lanes = "[\
            {\"name\":\"x\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":0,\"s\":\"t\",\"args\":{}},\
            {\"name\":\"y\",\"ph\":\"i\",\"ts\":2,\"pid\":2,\"tid\":0,\"s\":\"t\",\"args\":{}}]";
        assert!(validate_chrome_trace(two_lanes).is_err());
        let three = "[\
            {\"name\":\"x\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":0,\"args\":{}},\
            {\"name\":\"y\",\"ph\":\"i\",\"ts\":2,\"pid\":2,\"tid\":0,\"args\":{}},\
            {\"name\":\"z\",\"ph\":\"X\",\"ts\":3,\"dur\":2,\"pid\":3,\"tid\":0,\"args\":{}}]";
        let summary = validate_chrome_trace(three).unwrap();
        assert_eq!(summary.total_events, 3);
        assert_eq!(summary.cpm_events, 1);
    }
}
