//! # snacknoc-trace — cycle-level tracing & timeline observability
//!
//! A deterministic, bounded-memory, structured event-tracing subsystem for
//! the SnackNoC reproduction. The simulator's aggregate [`NetStats`-style]
//! counters answer *how much*; this crate answers *when* and *why*:
//!
//! * [`Tracer`] — the instrumentation trait. Producers (router pipeline,
//!   RCU datapath, CPM control loop) call it at interesting boundaries.
//! * [`NopTracer`] / [`TracerHandle::Nop`] — the zero-cost default. The
//!   [`TracerHandle::record_with`] entry point takes a *closure*, so when
//!   tracing is off no event is even constructed: trace-off runs are
//!   bit-identical to a build without this crate.
//! * [`RingTracer`] — per-component-class fixed-capacity ring buffers with
//!   drop counters, plus exact per-link hop counters that are immune to
//!   buffer exhaustion.
//! * [`export`] — Chrome trace-event (Perfetto-loadable) JSON with one
//!   process lane per component class.
//! * [`analysis`] — critical-path extraction (an exact tiling of the
//!   submit→finish interval into compute / ring-wait / VC-stall / spill /
//!   queue segments), link heatmaps and token-lifetime histograms.
//! * [`json`] — a dependency-free JSON parser used to self-validate
//!   emitted traces in CI smoke mode.
//!
//! ## Determinism contract
//!
//! Events carry only values the simulator already computes (cycle numbers,
//! node indices, dep ids). Buffers are plain `Vec`s filled in simulation
//! order; the link-counter map is a `BTreeMap`; export renders integers
//! only. Two runs of the same seed therefore emit byte-identical traces,
//! regardless of sweep worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod analysis;
pub mod event;
pub mod export;
pub mod json;
pub mod tracer;

pub use analysis::{
    critical_path, token_lifetimes, CriticalPath, CycleHistogram, PathCategory, PathSegment,
};
pub use event::{ComponentClass, EventKind, FireDest, TraceEvent, NO_DEP};
pub use export::to_chrome_trace;
pub use json::{parse as parse_json, validate_chrome_trace, Json, TraceFileSummary};
pub use tracer::{NopTracer, RingTracer, Tracer, TracerHandle};
