//! The [`Tracer`] trait, the zero-cost [`NopTracer`], the bounded
//! [`RingTracer`], and the enum-dispatch [`TracerHandle`] that the
//! simulator threads through its hot loops.

use std::collections::BTreeMap;

use crate::event::{ComponentClass, EventKind, TraceEvent};

/// Instrumentation sink. Producers call [`Tracer::record`] at interesting
/// boundaries and [`Tracer::count_link`] once per link traversal.
///
/// Implementations must be deterministic: no wall-clock, no I/O, no
/// iteration over unordered maps.
pub trait Tracer {
    /// Whether recording is active. Callers may use this to skip *gathering*
    /// expensive event inputs (e.g. pre/post state snapshots) entirely.
    fn enabled(&self) -> bool;

    /// Record one structured event at `cycle`.
    fn record(&mut self, cycle: u64, kind: EventKind);

    /// Count one flit traversing the link leaving `router` via `out_port`.
    /// Kept separate from the event buffers so link-utilization heatmaps
    /// stay exact even when the bounded buffers saturate and drop.
    fn count_link(&mut self, cycle: u64, router: u32, out_port: u8);
}

/// The do-nothing tracer: every method is an empty inline body, so a
/// monomorphized or enum-dispatched call site folds to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopTracer;

impl Tracer for NopTracer {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn record(&mut self, _cycle: u64, _kind: EventKind) {}
    #[inline(always)]
    fn count_link(&mut self, _cycle: u64, _router: u32, _out_port: u8) {}
}

/// Bounded-memory recording tracer: one fixed-capacity buffer per
/// component class, drop-newest overflow policy with per-class drop
/// counters, and an exact (unbounded but tiny) per-link hop counter map.
///
/// Drop-newest (rather than drop-oldest) keeps span-*birth* events —
/// `kernel_submit`, `packet_inject`, early `rcu_issue`s — which the
/// critical-path walk needs; the tail of a saturated run is summarized by
/// the drop counters instead.
#[derive(Debug, Clone, Default)]
pub struct RingTracer {
    capacity: usize,
    buffers: [Vec<TraceEvent>; 3],
    dropped: [u64; 3],
    link_hops: BTreeMap<(u32, u8), u64>,
    first_cycle: Option<u64>,
    last_cycle: u64,
}

impl RingTracer {
    /// Create a tracer holding at most `capacity` events *per component
    /// class* (so at most `3 * capacity` events total).
    pub fn new(capacity: usize) -> Self {
        RingTracer {
            capacity,
            buffers: [
                Vec::with_capacity(capacity.min(4096)),
                Vec::with_capacity(capacity.min(4096)),
                Vec::with_capacity(capacity.min(4096)),
            ],
            dropped: [0; 3],
            link_hops: BTreeMap::new(),
            first_cycle: None,
            last_cycle: 0,
        }
    }

    /// Per-class event buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events retained for `class`, in recording order.
    pub fn events(&self, class: ComponentClass) -> &[TraceEvent] {
        &self.buffers[class.index()]
    }

    /// Events dropped (buffer full) for `class`.
    pub fn dropped(&self, class: ComponentClass) -> u64 {
        self.dropped[class.index()]
    }

    /// Total events retained across all classes.
    pub fn len(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }

    /// True when no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// First and last cycle any event or link count was recorded at.
    pub fn cycle_range(&self) -> Option<(u64, u64)> {
        self.first_cycle.map(|f| (f, self.last_cycle))
    }

    /// All retained events merged into one deterministic order:
    /// by cycle, then lane (router < rcu < cpm), then recording order.
    pub fn merged_events(&self) -> Vec<TraceEvent> {
        let mut tagged: Vec<(u64, usize, usize, TraceEvent)> = Vec::with_capacity(self.len());
        for class in ComponentClass::ALL {
            for (i, ev) in self.buffers[class.index()].iter().enumerate() {
                tagged.push((ev.cycle, class.index(), i, *ev));
            }
        }
        tagged.sort_by_key(|a| (a.0, a.1, a.2));
        tagged.into_iter().map(|(_, _, _, ev)| ev).collect()
    }

    /// Exact per-link flit counts: `((router, out_port), hops)`, sorted.
    pub fn link_heatmap(&self) -> Vec<((u32, u8), u64)> {
        self.link_hops.iter().map(|(&k, &v)| (k, v)).collect()
    }

    fn touch(&mut self, cycle: u64) {
        if self.first_cycle.is_none() {
            self.first_cycle = Some(cycle);
        }
        self.last_cycle = self.last_cycle.max(cycle);
    }
}

impl Tracer for RingTracer {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, cycle: u64, kind: EventKind) {
        self.touch(cycle);
        let idx = kind.class().index();
        if self.buffers[idx].len() < self.capacity {
            self.buffers[idx].push(TraceEvent { cycle, kind });
        } else {
            self.dropped[idx] += 1;
        }
    }

    fn count_link(&mut self, cycle: u64, router: u32, out_port: u8) {
        self.touch(cycle);
        *self.link_hops.entry((router, out_port)).or_insert(0) += 1;
    }
}

/// Enum-dispatch handle the simulator owns. `Nop` is the default and costs
/// one branch per hook; `Ring` boxes the recording state so the handle
/// itself stays pointer-sized inside `Network`.
#[derive(Debug, Default)]
pub enum TracerHandle {
    /// Tracing disabled (default): hooks are branch-and-return.
    #[default]
    Nop,
    /// Tracing enabled with a bounded [`RingTracer`].
    Ring(Box<RingTracer>),
}

impl TracerHandle {
    /// A recording handle with the given per-class buffer capacity.
    pub fn ring(capacity: usize) -> Self {
        TracerHandle::Ring(Box::new(RingTracer::new(capacity)))
    }

    /// Whether this handle records anything.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        matches!(self, TracerHandle::Ring(_))
    }

    /// Record an event, constructing it *only if* tracing is enabled: the
    /// closure runs solely in the `Ring` arm, so disabled runs do zero
    /// work beyond one discriminant branch.
    #[inline(always)]
    pub fn record_with(&mut self, cycle: u64, make: impl FnOnce() -> EventKind) {
        if let TracerHandle::Ring(t) = self {
            let kind = make();
            t.record(cycle, kind);
        }
    }

    /// Count one link traversal (see [`Tracer::count_link`]).
    #[inline(always)]
    pub fn count_link(&mut self, cycle: u64, router: u32, out_port: u8) {
        if let TracerHandle::Ring(t) = self {
            t.count_link(cycle, router, out_port);
        }
    }

    /// Borrow the underlying recorder, if enabled.
    pub fn as_ring(&self) -> Option<&RingTracer> {
        match self {
            TracerHandle::Nop => None,
            TracerHandle::Ring(t) => Some(t),
        }
    }

    /// Take the recorder out, leaving `Nop` behind.
    pub fn take_ring(&mut self) -> Option<Box<RingTracer>> {
        match std::mem::take(self) {
            TracerHandle::Nop => None,
            TracerHandle::Ring(t) => Some(t),
        }
    }
}

impl Tracer for TracerHandle {
    #[inline(always)]
    fn enabled(&self) -> bool {
        self.is_enabled()
    }
    #[inline(always)]
    fn record(&mut self, cycle: u64, kind: EventKind) {
        if let TracerHandle::Ring(t) = self {
            t.record(cycle, kind);
        }
    }
    #[inline(always)]
    fn count_link(&mut self, cycle: u64, router: u32, out_port: u8) {
        TracerHandle::count_link(self, cycle, router, out_port);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cpm: u32) -> EventKind {
        EventKind::KernelSubmit { cpm }
    }

    #[test]
    fn nop_records_nothing_and_closure_never_runs() {
        let mut h = TracerHandle::Nop;
        let mut ran = false;
        h.record_with(5, || {
            ran = true;
            ev(0)
        });
        assert!(!ran, "event constructor must not run when tracing is off");
        assert!(h.as_ring().is_none());
    }

    #[test]
    fn ring_drops_newest_when_full_and_counts_drops() {
        let mut t = RingTracer::new(2);
        t.record(1, ev(0));
        t.record(2, ev(1));
        t.record(3, ev(2)); // dropped
        let kept = t.events(ComponentClass::Cpm);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].cycle, 1);
        assert_eq!(kept[1].cycle, 2);
        assert_eq!(t.dropped(ComponentClass::Cpm), 1);
        assert_eq!(t.dropped(ComponentClass::Router), 0);
        assert_eq!(t.cycle_range(), Some((1, 3)));
    }

    #[test]
    fn buffers_are_per_class() {
        let mut t = RingTracer::new(1);
        t.record(1, ev(0)); // cpm
        t.record(
            1,
            EventKind::RcuIssue { node: 0, sub_block: 0, seq: 0 },
        ); // rcu: separate buffer, not dropped
        assert_eq!(t.events(ComponentClass::Cpm).len(), 1);
        assert_eq!(t.events(ComponentClass::Rcu).len(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn link_counts_survive_buffer_saturation() {
        let mut t = RingTracer::new(0); // every event drops
        t.record(1, ev(0));
        t.count_link(1, 4, 2);
        t.count_link(2, 4, 2);
        t.count_link(2, 0, 1);
        assert_eq!(t.len(), 0);
        assert_eq!(t.link_heatmap(), vec![((0, 1), 1), ((4, 2), 2)]);
    }

    #[test]
    fn merged_events_order_is_cycle_then_lane_then_arrival() {
        let mut t = RingTracer::new(8);
        t.record(2, ev(0)); // cpm @2
        t.record(1, EventKind::RcuIssue { node: 3, sub_block: 0, seq: 0 }); // rcu @1
        t.record(
            1,
            EventKind::FlitHop { router: 0, out_port: 1, flit: 9, packet: 9 },
        ); // router @1
        let merged = t.merged_events();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].kind.class(), ComponentClass::Router);
        assert_eq!(merged[1].kind.class(), ComponentClass::Rcu);
        assert_eq!(merged[2].kind.class(), ComponentClass::Cpm);
    }

    #[test]
    fn handle_take_leaves_nop() {
        let mut h = TracerHandle::ring(4);
        h.record(1, ev(0));
        let ring = h.take_ring().expect("was ring");
        assert_eq!(ring.len(), 1);
        assert!(!h.is_enabled());
    }
}
