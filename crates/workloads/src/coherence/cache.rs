//! A private set-associative L1 cache with MESI line states and LRU
//! replacement.

use super::msg::LineAddr;

/// MESI state of a resident L1 line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LineState {
    /// Modified: sole dirty copy.
    Modified,
    /// Exclusive: sole clean copy (silent upgrade to M on write).
    Exclusive,
    /// Shared: read-only copy, others may share.
    Shared,
}

/// L1 geometry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl Default for CacheConfig {
    /// The paper's 32 KB, 4-way L1 with 64 B lines: 128 sets × 4 ways.
    fn default() -> Self {
        CacheConfig { sets: 128, ways: 4 }
    }
}

/// One cache way.
#[derive(Clone, Copy, Debug)]
struct Way {
    line: LineAddr,
    state: LineState,
    /// LRU stamp (bigger = more recent).
    used: u64,
}

/// A private L1 cache.
#[derive(Clone, Debug)]
pub struct L1Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    tick: u64,
}

impl L1Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets > 0 && cfg.ways > 0, "cache geometry must be non-zero");
        L1Cache { cfg, sets: vec![Vec::new(); cfg.sets], tick: 0 }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line % self.cfg.sets as u64) as usize
    }

    /// Looks up `line`, refreshing LRU on hit.
    pub fn lookup(&mut self, line: LineAddr) -> Option<LineState> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let way = self.sets[set].iter_mut().find(|w| w.line == line)?;
        way.used = tick;
        Some(way.state)
    }

    /// Peeks at `line` without touching LRU.
    pub fn peek(&self, line: LineAddr) -> Option<LineState> {
        self.sets[self.set_of(line)].iter().find(|w| w.line == line).map(|w| w.state)
    }

    /// Sets the state of a resident line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn set_state(&mut self, line: LineAddr, state: LineState) {
        let set = self.set_of(line);
        let way = self.sets[set]
            .iter_mut()
            .find(|w| w.line == line)
            .expect("set_state on a non-resident line");
        way.state = state;
    }

    /// Removes `line`, returning its state if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineState> {
        let set = self.set_of(line);
        let at = self.sets[set].iter().position(|w| w.line == line)?;
        Some(self.sets[set].swap_remove(at).state)
    }

    /// Installs `line` in `state`, evicting the LRU way if the set is
    /// full. Returns the evicted `(line, state)`, which the caller must
    /// write back if modified.
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident (install implies a miss).
    pub fn install(&mut self, line: LineAddr, state: LineState) -> Option<(LineAddr, LineState)> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.cfg.ways;
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        assert!(set.iter().all(|w| w.line != line), "install of a resident line");
        let victim = if set.len() >= ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.used)
                .map(|(i, _)| i)
                .expect("full set has a victim");
            let v = set.swap_remove(lru);
            Some((v.line, v.state))
        } else {
            None
        };
        set.push(Way { line, state, used: tick });
        victim
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> L1Cache {
        L1Cache::new(CacheConfig { sets: 2, ways: 2 })
    }

    #[test]
    fn install_lookup_invalidate_round_trip() {
        let mut c = tiny();
        assert_eq!(c.lookup(4), None);
        assert_eq!(c.install(4, LineState::Exclusive), None);
        assert_eq!(c.lookup(4), Some(LineState::Exclusive));
        c.set_state(4, LineState::Modified);
        assert_eq!(c.peek(4), Some(LineState::Modified));
        assert_eq!(c.invalidate(4), Some(LineState::Modified));
        assert_eq!(c.lookup(4), None);
        assert_eq!(c.invalidate(4), None);
    }

    #[test]
    fn lru_evicts_least_recent_within_set() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0.
        c.install(0, LineState::Shared);
        c.install(2, LineState::Modified);
        c.lookup(0); // refresh 0: line 2 is now LRU
        let victim = c.install(4, LineState::Shared);
        assert_eq!(victim, Some((2, LineState::Modified)));
        assert_eq!(c.peek(0), Some(LineState::Shared));
        assert_eq!(c.peek(4), Some(LineState::Shared));
        assert_eq!(c.resident(), 2);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.install(0, LineState::Shared); // set 0
        c.install(1, LineState::Shared); // set 1
        c.install(2, LineState::Shared); // set 0
        c.install(3, LineState::Shared); // set 1
        assert_eq!(c.resident(), 4);
        // Fifth install in set 0 evicts only from set 0.
        let v = c.install(4, LineState::Shared).expect("eviction");
        assert_eq!(v.0 % 2, 0, "victim came from set 0");
        assert_eq!(c.peek(1), Some(LineState::Shared));
        assert_eq!(c.peek(3), Some(LineState::Shared));
    }

    #[test]
    #[should_panic(expected = "resident")]
    fn double_install_rejected() {
        let mut c = tiny();
        c.install(7, LineState::Shared);
        c.install(7, LineState::Shared);
    }
}
