//! The home-node directory controller: one per L2 bank, serialising
//! coherence transactions per line with a busy bit and a pending queue.

use super::msg::{CohMessage, LineAddr};
use snacknoc_noc::NodeId;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Directory-visible state of one line.
#[derive(Clone, PartialEq, Eq, Debug)]
enum DirState {
    /// No cached copies (home/L2 owns the data).
    Uncached,
    /// Read-only copies at these cores.
    Shared(BTreeSet<NodeId>),
    /// Exclusive/modified at this core.
    Modified(NodeId),
}

/// Per-line directory entry.
#[derive(Clone, Debug)]
struct DirLine {
    state: DirState,
    /// A forward is outstanding; conflicting requests queue.
    busy: bool,
    pending: VecDeque<CohMessage>,
}

impl Default for DirLine {
    fn default() -> Self {
        DirLine { state: DirState::Uncached, busy: false, pending: VecDeque::new() }
    }
}

/// Counters for protocol analyses.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirectoryStats {
    /// Read requests processed.
    pub gets: u64,
    /// Write requests processed.
    pub getm: u64,
    /// Dirty writebacks accepted.
    pub putm: u64,
    /// Writebacks that lost a race to a forward (ignored).
    pub stale_putm: u64,
    /// Invalidations sent.
    pub invalidations: u64,
    /// Forwards sent to owners.
    pub forwards: u64,
    /// Requests that had to queue behind a busy line.
    pub queued: u64,
}

/// One home-node (L2 bank) directory.
///
/// The directory is allocated on demand per line; the backing L2 is
/// modelled as always hitting (the shared L2 of Table IV is large relative
/// to the synthetic working sets — off-chip refills would only add a fixed
/// latency to `Data` responses).
#[derive(Clone, Debug)]
pub struct Directory {
    home: NodeId,
    lines: HashMap<LineAddr, DirLine>,
    /// Counters.
    pub stats: DirectoryStats,
}

impl Directory {
    /// Creates the directory for home node `home`.
    pub fn new(home: NodeId) -> Self {
        Directory { home, lines: HashMap::new(), stats: DirectoryStats::default() }
    }

    /// The home node this directory lives at.
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// Handles a message addressed to this home, returning the messages to
    /// send in response (destinations are encoded in the messages).
    pub fn handle(&mut self, msg: CohMessage) -> Vec<CohMessage> {
        let mut out = Vec::new();
        self.process(msg, &mut out);
        out
    }

    fn process(&mut self, msg: CohMessage, out: &mut Vec<CohMessage>) {
        let line = msg.line();
        let entry = self.lines.entry(line).or_default();
        match msg {
            CohMessage::GetS { core, .. } | CohMessage::GetM { core, .. } => {
                if entry.busy {
                    entry.pending.push_back(msg);
                    self.stats.queued += 1;
                    return;
                }
                let is_write = matches!(msg, CohMessage::GetM { .. });
                if is_write {
                    self.stats.getm += 1;
                } else {
                    self.stats.gets += 1;
                }
                match entry.state.clone() {
                    DirState::Uncached => {
                        entry.state = DirState::Modified(core);
                        out.push(CohMessage::Data { core, line, exclusive: true, acks_needed: 0 });
                    }
                    DirState::Shared(mut sharers) => {
                        if is_write {
                            sharers.remove(&core);
                            let acks = sharers.len() as u32;
                            for sharer in &sharers {
                                out.push(CohMessage::Inv { sharer: *sharer, requestor: core, line });
                            }
                            self.stats.invalidations += u64::from(acks);
                            entry.state = DirState::Modified(core);
                            out.push(CohMessage::Data {
                                core,
                                line,
                                exclusive: true,
                                acks_needed: acks,
                            });
                        } else {
                            sharers.insert(core);
                            entry.state = DirState::Shared(sharers);
                            out.push(CohMessage::Data {
                                core,
                                line,
                                exclusive: false,
                                acks_needed: 0,
                            });
                        }
                    }
                    DirState::Modified(owner) => {
                        debug_assert_ne!(owner, core, "owner re-requesting its own line");
                        entry.busy = true;
                        self.stats.forwards += 1;
                        out.push(if is_write {
                            CohMessage::FwdGetM { owner, requestor: core, line }
                        } else {
                            CohMessage::FwdGetS { owner, requestor: core, line }
                        });
                    }
                }
            }
            CohMessage::PutM { core, .. } => {
                if entry.busy {
                    entry.pending.push_back(msg);
                    self.stats.queued += 1;
                    return;
                }
                match entry.state {
                    DirState::Modified(owner) if owner == core => {
                        entry.state = DirState::Uncached;
                        self.stats.putm += 1;
                    }
                    _ => {
                        // The line was forwarded away while the PutM was in
                        // flight: the evictor no longer owns it. Ack so it
                        // can drop its retained copy.
                        self.stats.stale_putm += 1;
                    }
                }
                out.push(CohMessage::PutAck { core, line });
            }
            CohMessage::CopyBack { from, requestor, kept_shared, .. } => {
                debug_assert!(entry.busy, "copy-back without an outstanding forward");
                entry.busy = false;
                entry.state = if kept_shared {
                    DirState::Shared([from, requestor].into_iter().collect())
                } else {
                    DirState::Modified(requestor)
                };
                // Drain requests that queued behind the forward, stopping
                // if one of them makes the line busy again.
                loop {
                    let next = match self.lines.get_mut(&line) {
                        Some(e) if !e.busy => e.pending.pop_front(),
                        _ => None,
                    };
                    let Some(next) = next else { break };
                    self.process(next, out);
                }
            }
            other => unreachable!("directory received a core-side message: {other:?}"),
        }
    }

    /// Whether any line is mid-transaction (used by drain checks).
    pub fn is_quiescent(&self) -> bool {
        self.lines.values().all(|l| !l.busy && l.pending.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn uncached_read_grants_exclusive() {
        let mut d = Directory::new(n(0));
        let out = d.handle(CohMessage::GetS { core: n(1), line: 9 });
        assert_eq!(out, vec![CohMessage::Data { core: n(1), line: 9, exclusive: true, acks_needed: 0 }]);
    }

    #[test]
    fn second_reader_must_wait_for_forward() {
        let mut d = Directory::new(n(0));
        d.handle(CohMessage::GetS { core: n(1), line: 9 });
        let out = d.handle(CohMessage::GetS { core: n(2), line: 9 });
        assert_eq!(out, vec![CohMessage::FwdGetS { owner: n(1), requestor: n(2), line: 9 }]);
        // A third reader queues behind the busy line...
        assert!(d.handle(CohMessage::GetS { core: n(3), line: 9 }).is_empty());
        assert_eq!(d.stats.queued, 1);
        assert!(!d.is_quiescent());
        // ...and is served when the copy-back lands.
        let out = d.handle(CohMessage::CopyBack {
            line: 9,
            from: n(1),
            requestor: n(2),
            kept_shared: true,
        });
        assert_eq!(
            out,
            vec![CohMessage::Data { core: n(3), line: 9, exclusive: false, acks_needed: 0 }]
        );
        assert!(d.is_quiescent());
    }

    #[test]
    fn write_to_shared_invalidates_all_other_sharers() {
        let mut d = Directory::new(n(0));
        d.handle(CohMessage::GetS { core: n(1), line: 4 });
        // Core 2 reads too: home forwards to core 1, the copy-back leaves
        // the line shared by {1, 2}.
        d.handle(CohMessage::GetS { core: n(2), line: 4 });
        d.handle(CohMessage::CopyBack { line: 4, from: n(1), requestor: n(2), kept_shared: true });
        // line 4 shared by {1,2}; core 3 writes.
        let mut out = d.handle(CohMessage::GetM { core: n(3), line: 4 });
        out.sort_by_key(|m| format!("{m:?}"));
        assert!(out.contains(&CohMessage::Inv { sharer: n(1), requestor: n(3), line: 4 }));
        assert!(out.contains(&CohMessage::Inv { sharer: n(2), requestor: n(3), line: 4 }));
        assert!(out.contains(&CohMessage::Data {
            core: n(3),
            line: 4,
            exclusive: true,
            acks_needed: 2
        }));
        assert_eq!(d.stats.invalidations, 2);
    }

    #[test]
    fn upgrade_by_a_sharer_skips_its_own_invalidation() {
        let mut d = Directory::new(n(0));
        d.handle(CohMessage::GetS { core: n(1), line: 4 });
        d.handle(CohMessage::GetS { core: n(2), line: 4 });
        d.handle(CohMessage::CopyBack { line: 4, from: n(1), requestor: n(2), kept_shared: true });
        let out = d.handle(CohMessage::GetM { core: n(1), line: 4 });
        assert!(out.contains(&CohMessage::Inv { sharer: n(2), requestor: n(1), line: 4 }));
        assert!(out.contains(&CohMessage::Data {
            core: n(1),
            line: 4,
            exclusive: true,
            acks_needed: 1
        }));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn writeback_frees_the_line_and_stale_writeback_is_ignored() {
        let mut d = Directory::new(n(0));
        d.handle(CohMessage::GetM { core: n(1), line: 5 });
        let out = d.handle(CohMessage::PutM { core: n(1), line: 5, dirty: true });
        assert_eq!(out, vec![CohMessage::PutAck { core: n(1), line: 5 }]);
        assert_eq!(d.stats.putm, 1);
        // Next reader sees it uncached again.
        let out = d.handle(CohMessage::GetS { core: n(2), line: 5 });
        assert_eq!(out, vec![CohMessage::Data { core: n(2), line: 5, exclusive: true, acks_needed: 0 }]);
        // A stale PutM from core 1 (who no longer owns it) is acked but
        // does not disturb core 2's ownership.
        let out = d.handle(CohMessage::PutM { core: n(1), line: 5, dirty: true });
        assert_eq!(out, vec![CohMessage::PutAck { core: n(1), line: 5 }]);
        assert_eq!(d.stats.stale_putm, 1);
        let out = d.handle(CohMessage::GetS { core: n(3), line: 5 });
        assert_eq!(out, vec![CohMessage::FwdGetS { owner: n(2), requestor: n(3), line: 5 }]);
    }
}
