//! The coherent traffic engine: in-order cores with private L1s running
//! synthetic address streams over the MESI protocol. Pumped with the same
//! `tick`/`deliver` protocol as [`crate::TrafficEngine`].

use super::cache::{CacheConfig, L1Cache, LineState};
use super::directory::Directory;
use super::msg::{CohMessage, LineAddr};
use crate::hashrand::unit;
use snacknoc_noc::{Mesh, NodeId, PacketSpec, TrafficClass};
use std::collections::VecDeque;

/// A synthetic per-core address stream.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AccessPattern {
    /// Lines in each core's private region.
    pub private_lines: u64,
    /// Lines in the globally shared region.
    pub shared_lines: u64,
    /// Probability an access targets the shared region.
    pub shared_fraction: f64,
    /// Probability an access is a write.
    pub write_fraction: f64,
    /// Mean think cycles between accesses (an in-order core: one access
    /// outstanding at a time).
    pub think_time: f64,
    /// Accesses each core performs.
    pub accesses_per_core: u64,
}

impl Default for AccessPattern {
    fn default() -> Self {
        AccessPattern {
            private_lines: 2_048,
            shared_lines: 256,
            shared_fraction: 0.2,
            write_fraction: 0.3,
            think_time: 250.0,
            accesses_per_core: 2_000,
        }
    }
}

impl AccessPattern {
    /// A sharing-heavy pattern (lots of invalidations and forwards).
    pub fn shared_heavy() -> Self {
        AccessPattern {
            shared_lines: 64,
            shared_fraction: 0.6,
            write_fraction: 0.4,
            ..Self::default()
        }
    }

    /// A streaming pattern over a large private footprint (capacity
    /// misses and writebacks dominate).
    pub fn private_streaming() -> Self {
        AccessPattern {
            private_lines: 16_384,
            shared_fraction: 0.02,
            write_fraction: 0.5,
            think_time: 150.0,
            ..Self::default()
        }
    }
}

/// An in-flight miss.
#[derive(Clone, Copy, Debug)]
struct Pending {
    line: LineAddr,
    is_write: bool,
    data_got: bool,
    exclusive: bool,
    acks_needed: u32,
    acks_got: u32,
    /// An invalidation raced past this read miss: complete the access but
    /// do not install the (already-invalidated) line.
    squashed: bool,
}

/// Per-core state.
#[derive(Clone, Debug)]
struct CoreState {
    node: NodeId,
    issued: u64,
    completed: u64,
    next_at: u64,
    waiting: Option<Pending>,
    /// Forwards/invalidations that raced ahead of this core's pending
    /// data; replayed once the miss completes.
    stalled: Vec<CohMessage>,
    /// Lines written back but retained until the `PutAck` (so racing
    /// forwards can still be served).
    evicting: Vec<LineAddr>,
}

/// Counters for the traffic/protocol analyses.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoherentStats {
    /// L1 hits.
    pub hits: u64,
    /// L1 misses (including upgrades).
    pub misses: u64,
    /// S→M upgrades.
    pub upgrades: u64,
    /// Invalidations received.
    pub invalidations: u64,
    /// Dirty writebacks sent.
    pub writebacks: u64,
    /// Forwards served from the owning L1.
    pub forwards_served: u64,
}

/// The MESI-coherent CMP traffic engine.
///
/// ```
/// use snacknoc_workloads::coherence::{AccessPattern, CoherentEngine};
/// use snacknoc_noc::{Mesh, Network, NocConfig};
///
/// let cfg = NocConfig::dapper(); // 3 vnets: request/forward/response
/// let mut net = Network::new(cfg).unwrap();
/// let mut eng = CoherentEngine::new(
///     AccessPattern { accesses_per_core: 50, ..AccessPattern::default() },
///     *net.mesh(),
///     Default::default(),
///     7,
/// );
/// while !eng.done() && net.cycle() < 1_000_000 {
///     for spec in eng.tick(net.cycle()) {
///         net.inject(spec).unwrap();
///     }
///     net.step();
///     let now = net.cycle();
///     for node in net.mesh().nodes().collect::<Vec<_>>() {
///         for pkt in net.drain_ejected(node) {
///             eng.deliver(now, node, pkt.payload);
///         }
///     }
/// }
/// assert!(eng.done());
/// ```
#[derive(Clone, Debug)]
pub struct CoherentEngine {
    pattern: AccessPattern,
    mesh: Mesh,
    seed: u64,
    caches: Vec<L1Cache>,
    dirs: Vec<Directory>,
    cores: Vec<CoreState>,
    /// Messages generated during delivery, injected on the next tick.
    outbox: VecDeque<(NodeId, CohMessage)>,
    finished_at: Option<u64>,
    total_completed: u64,
    /// Counters.
    pub stats: CoherentStats,
}

impl CoherentEngine {
    /// Creates an engine running `pattern` on every node of `mesh` with
    /// the given L1 geometry, deterministically seeded.
    pub fn new(pattern: AccessPattern, mesh: Mesh, l1: CacheConfig, seed: u64) -> Self {
        CoherentEngine {
            caches: (0..mesh.node_count()).map(|_| L1Cache::new(l1)).collect(),
            dirs: mesh.nodes().map(Directory::new).collect(),
            cores: mesh
                .nodes()
                .enumerate()
                .map(|(i, node)| CoreState {
                    node,
                    issued: 0,
                    completed: 0,
                    // Stagger core start-up.
                    next_at: (i as u64) * (pattern.think_time as u64 / mesh.node_count() as u64).max(1),
                    waiting: None,
                    stalled: Vec::new(),
                    evicting: Vec::new(),
                })
                .collect(),
            pattern,
            mesh,
            seed,
            outbox: VecDeque::new(),
            finished_at: None,
            total_completed: 0,
            stats: CoherentStats::default(),
        }
    }

    /// Whether every core finished its access stream.
    pub fn done(&self) -> bool {
        self.finished_at.is_some()
    }

    /// The cycle the last access completed, if finished.
    pub fn finished_at(&self) -> Option<u64> {
        self.finished_at
    }

    /// Total accesses completed so far.
    pub fn completed(&self) -> u64 {
        self.total_completed
    }

    /// Aggregate directory statistics across all home nodes.
    pub fn directory_stats(&self) -> super::directory::DirectoryStats {
        let mut agg = super::directory::DirectoryStats::default();
        for d in &self.dirs {
            agg.gets += d.stats.gets;
            agg.getm += d.stats.getm;
            agg.putm += d.stats.putm;
            agg.stale_putm += d.stats.stale_putm;
            agg.invalidations += d.stats.invalidations;
            agg.forwards += d.stats.forwards;
            agg.queued += d.stats.queued;
        }
        agg
    }

    /// The home L2 bank of a line (block-interleaved).
    fn home_of(&self, line: LineAddr) -> NodeId {
        NodeId::new((line % self.mesh.node_count() as u64) as usize)
    }

    fn dest_of(&self, msg: CohMessage) -> NodeId {
        match msg {
            CohMessage::GetS { line, .. }
            | CohMessage::GetM { line, .. }
            | CohMessage::PutM { line, .. }
            | CohMessage::CopyBack { line, .. } => self.home_of(line),
            CohMessage::Data { core, .. } | CohMessage::PutAck { core, .. } => core,
            CohMessage::FwdGetS { owner, .. } | CohMessage::FwdGetM { owner, .. } => owner,
            CohMessage::Inv { sharer, .. } => sharer,
            CohMessage::InvAck { requestor, .. } => requestor,
        }
    }

    fn spec(&self, src: NodeId, msg: CohMessage) -> PacketSpec<CohMessage> {
        PacketSpec::new(
            src,
            self.dest_of(msg),
            msg.vnet(),
            TrafficClass::Communication,
            msg.size_bytes(),
            msg,
        )
    }

    /// Produces the packets to inject at `cycle`: protocol responses from
    /// the previous delivery round plus new core accesses.
    pub fn tick(&mut self, cycle: u64) -> Vec<PacketSpec<CohMessage>> {
        let mut out: Vec<PacketSpec<CohMessage>> = Vec::new();
        while let Some((src, msg)) = self.outbox.pop_front() {
            out.push(self.spec(src, msg));
        }
        for c in 0..self.cores.len() {
            if let Some((src, msg)) = self.try_access(c, cycle) {
                out.push(self.spec(src, msg));
            }
        }
        out
    }

    /// The earliest cycle at which [`CoherentEngine::tick`] can do work, or
    /// `None` if the engine is drained (outbox empty, every core either
    /// finished or blocked on an in-flight miss — only a delivery re-wakes
    /// it). A queued outbox reports cycle 0 (i.e. "immediately"); a core's
    /// post-completion gap reports its `next_at`. Before the returned
    /// cycle, `tick` is a pure no-op.
    pub fn next_event_cycle(&self) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut merge = |cycle: u64| {
            next = Some(next.map_or(cycle, |n: u64| n.min(cycle)));
        };
        if !self.outbox.is_empty() {
            merge(0);
        }
        for core in &self.cores {
            if core.waiting.is_none() && core.issued < self.pattern.accesses_per_core {
                merge(core.next_at);
            }
        }
        next
    }

    /// Attempts one access on core `c`; returns a request on a miss.
    fn try_access(&mut self, c: usize, cycle: u64) -> Option<(NodeId, CohMessage)> {
        let core = &self.cores[c];
        if core.waiting.is_some()
            || core.issued >= self.pattern.accesses_per_core
            || cycle < core.next_at
        {
            return None;
        }
        let node = core.node;
        let k = core.issued;
        let line = self.sample_line(c, k);
        if core.evicting.contains(&line) {
            // The writeback of this very line is in flight; re-requesting
            // it could overtake the PutM at the home. Retry after the ack.
            return None;
        }
        let is_write = unit(self.seed, c as u64, k, 11) < self.pattern.write_fraction;
        self.cores[c].issued += 1;
        let state = self.caches[c].lookup(line);
        let hit = match state {
            Some(LineState::Modified) => true,
            Some(LineState::Exclusive) => {
                if is_write {
                    // Silent E→M upgrade.
                    self.caches[c].set_state(line, LineState::Modified);
                }
                true
            }
            Some(LineState::Shared) => !is_write,
            None => false,
        };
        if hit {
            self.stats.hits += 1;
            self.complete_access(c, cycle);
            return None;
        }
        self.stats.misses += 1;
        if state == Some(LineState::Shared) {
            self.stats.upgrades += 1;
        }
        self.cores[c].waiting = Some(Pending {
            line,
            is_write,
            data_got: false,
            exclusive: false,
            acks_needed: 0,
            acks_got: 0,
            squashed: false,
        });
        let msg = if is_write {
            CohMessage::GetM { core: node, line }
        } else {
            CohMessage::GetS { core: node, line }
        };
        Some((node, msg))
    }

    fn sample_line(&self, c: usize, k: u64) -> LineAddr {
        let shared = unit(self.seed, c as u64, k, 12) < self.pattern.shared_fraction;
        if shared {
            let u = unit(self.seed, c as u64, k, 13);
            (u * self.pattern.shared_lines as f64) as u64
        } else {
            // Private regions are disjoint per core, above the shared one.
            let u = unit(self.seed, c as u64, k, 14);
            self.pattern.shared_lines
                + c as u64 * self.pattern.private_lines
                + (u * self.pattern.private_lines as f64) as u64
        }
    }

    fn complete_access(&mut self, c: usize, cycle: u64) {
        let core = &mut self.cores[c];
        core.completed += 1;
        self.total_completed += 1;
        let exp = -(1.0 - unit(self.seed, c as u64, core.completed, 15)).ln();
        core.next_at = cycle + (self.pattern.think_time * exp).max(1.0) as u64;
        let total = self.pattern.accesses_per_core * self.mesh.node_count() as u64;
        if self.total_completed == total && self.finished_at.is_none() {
            self.finished_at = Some(cycle);
        }
    }

    /// Hands the engine a delivered coherence message.
    pub fn deliver(&mut self, cycle: u64, at: NodeId, msg: CohMessage) {
        match msg {
            CohMessage::GetS { .. }
            | CohMessage::GetM { .. }
            | CohMessage::PutM { .. }
            | CohMessage::CopyBack { .. } => {
                for reply in self.dirs[at.index()].handle(msg) {
                    self.outbox.push_back((at, reply));
                }
            }
            _ => self.deliver_to_core(cycle, at.index(), msg),
        }
    }

    fn deliver_to_core(&mut self, cycle: u64, c: usize, msg: CohMessage) {
        // Forwards for a line this core is itself missing on may overtake
        // the data response; stall them until it lands (the data is on its
        // way unconditionally, so this cannot deadlock). Invalidations
        // must NOT stall: the invalidating writer may be waiting on our
        // ack while our own completion waits on that writer — ack
        // immediately and squash a pending read's install instead.
        let waiting_line = self.cores[c].waiting.map(|p| p.line);
        match msg {
            CohMessage::FwdGetS { line, .. } | CohMessage::FwdGetM { line, .. }
                if waiting_line == Some(line) =>
            {
                self.cores[c].stalled.push(msg);
                return;
            }
            CohMessage::Inv { line, .. } if waiting_line == Some(line) => {
                if let Some(p) = self.cores[c].waiting.as_mut() {
                    if !p.is_write {
                        p.squashed = true;
                    }
                }
                // Fall through to the normal Inv handling below.
            }
            _ => {}
        }
        let node = self.cores[c].node;
        match msg {
            CohMessage::Data { line, exclusive, acks_needed, .. } => {
                let p = self.cores[c].waiting.as_mut().expect("data matches a pending miss");
                debug_assert_eq!(p.line, line);
                p.data_got = true;
                p.exclusive = exclusive;
                p.acks_needed = acks_needed;
                self.try_finish_miss(c, cycle);
            }
            CohMessage::InvAck { line, .. } => {
                let p = self.cores[c].waiting.as_mut().expect("ack matches a pending miss");
                debug_assert_eq!(p.line, line);
                p.acks_got += 1;
                self.try_finish_miss(c, cycle);
            }
            CohMessage::FwdGetS { requestor, line, .. } => {
                self.stats.forwards_served += 1;
                if self.caches[c].peek(line).is_some() {
                    self.caches[c].set_state(line, LineState::Shared);
                    self.outbox.push_back((
                        node,
                        CohMessage::Data { core: requestor, line, exclusive: false, acks_needed: 0 },
                    ));
                    self.outbox.push_back((
                        node,
                        CohMessage::CopyBack { line, from: node, requestor, kept_shared: true },
                    ));
                } else {
                    // Served from the retained copy of an in-flight
                    // eviction: hand the requestor exclusive ownership.
                    debug_assert!(self.cores[c].evicting.contains(&line));
                    self.outbox.push_back((
                        node,
                        CohMessage::Data { core: requestor, line, exclusive: true, acks_needed: 0 },
                    ));
                    self.outbox.push_back((
                        node,
                        CohMessage::CopyBack { line, from: node, requestor, kept_shared: false },
                    ));
                }
            }
            CohMessage::FwdGetM { requestor, line, .. } => {
                self.stats.forwards_served += 1;
                self.caches[c].invalidate(line);
                self.outbox.push_back((
                    node,
                    CohMessage::Data { core: requestor, line, exclusive: true, acks_needed: 0 },
                ));
                self.outbox.push_back((
                    node,
                    CohMessage::CopyBack { line, from: node, requestor, kept_shared: false },
                ));
            }
            CohMessage::Inv { requestor, line, .. } => {
                self.stats.invalidations += 1;
                self.caches[c].invalidate(line);
                self.outbox.push_back((node, CohMessage::InvAck { requestor, line }));
            }
            CohMessage::PutAck { line, .. } => {
                self.cores[c].evicting.retain(|&l| l != line);
            }
            other => unreachable!("core received a home-side message: {other:?}"),
        }
    }

    fn try_finish_miss(&mut self, c: usize, cycle: u64) {
        let Some(p) = self.cores[c].waiting else { return };
        if !p.data_got || p.acks_got < p.acks_needed {
            return;
        }
        let node = self.cores[c].node;
        let state = if p.is_write {
            LineState::Modified
        } else if p.exclusive {
            LineState::Exclusive
        } else {
            LineState::Shared
        };
        if p.squashed {
            // A racing invalidation already claimed the line: consume the
            // data transiently without caching it.
        } else if self.caches[c].peek(p.line).is_some() {
            // Upgrade: the line is already resident.
            self.caches[c].set_state(p.line, state);
        } else if let Some((victim, victim_state)) = self.caches[c].install(p.line, state) {
            // Owned victims (M dirty, E clean) notify the home so the
            // directory never believes a departed owner still holds the
            // line; shared victims evict silently.
            match victim_state {
                LineState::Modified | LineState::Exclusive => {
                    let dirty = victim_state == LineState::Modified;
                    if dirty {
                        self.stats.writebacks += 1;
                    }
                    self.cores[c].evicting.push(victim);
                    self.outbox
                        .push_back((node, CohMessage::PutM { core: node, line: victim, dirty }));
                }
                LineState::Shared => {}
            }
        }
        self.cores[c].waiting = None;
        self.complete_access(c, cycle);
        // Replay forwards/invalidations that raced ahead of the data.
        let stalled = std::mem::take(&mut self.cores[c].stalled);
        for msg in stalled {
            self.deliver_to_core(cycle, c, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snacknoc_noc::{Network, NocConfig};

    fn pump(pattern: AccessPattern, seed: u64, cap: u64) -> (CoherentEngine, u64) {
        let mut net: Network<CohMessage> =
            Network::new(NocConfig::dapper().with_sample_window(1_000)).unwrap();
        let mut eng = CoherentEngine::new(pattern, *net.mesh(), CacheConfig::default(), seed);
        let nodes: Vec<_> = net.mesh().nodes().collect();
        while !eng.done() && net.cycle() < cap {
            for spec in eng.tick(net.cycle()) {
                net.inject(spec).unwrap();
            }
            net.step();
            let now = net.cycle();
            for &node in &nodes {
                for pkt in net.drain_ejected(node) {
                    eng.deliver(now, node, pkt.payload);
                }
            }
        }
        let cycles = net.cycle();
        (eng, cycles)
    }

    #[test]
    fn private_streams_complete_with_writebacks() {
        let (eng, _) = pump(
            AccessPattern {
                accesses_per_core: 600,
                shared_fraction: 0.0,
                ..AccessPattern::private_streaming()
            },
            5,
            10_000_000,
        );
        assert!(eng.done(), "all accesses complete");
        assert_eq!(eng.completed(), 600 * 16);
        assert!(eng.stats.writebacks > 0, "capacity misses evict dirty lines");
        assert_eq!(eng.stats.invalidations, 0, "private data is never invalidated");
        let d = eng.directory_stats();
        assert_eq!(d.forwards, 0, "no sharing, no forwards");
        assert!(d.putm > 0);
    }

    #[test]
    fn shared_writes_generate_invalidations_and_forwards() {
        let (eng, _) = pump(
            AccessPattern { accesses_per_core: 400, ..AccessPattern::shared_heavy() },
            6,
            10_000_000,
        );
        assert!(eng.done());
        assert!(eng.stats.invalidations > 0, "sharers get invalidated");
        let d = eng.directory_stats();
        assert!(d.forwards > 0, "dirty lines get forwarded");
        assert!(d.invalidations >= eng.stats.invalidations);
        assert!(eng.stats.forwards_served > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = AccessPattern { accesses_per_core: 150, ..AccessPattern::shared_heavy() };
        let (a, ca) = pump(p, 9, 10_000_000);
        let (b, cb) = pump(p, 9, 10_000_000);
        assert_eq!(ca, cb);
        assert_eq!(a.stats.misses, b.stats.misses);
        assert_eq!(a.stats.invalidations, b.stats.invalidations);
        let (c, cc) = pump(p, 10, 10_000_000);
        assert!(c.done());
        assert!(cc != ca || c.stats.misses != a.stats.misses, "seeds differ");
    }

    #[test]
    fn hit_rate_is_high_for_small_working_sets() {
        let (eng, _) = pump(
            AccessPattern {
                private_lines: 64,
                shared_lines: 16,
                shared_fraction: 0.1,
                accesses_per_core: 1_000,
                ..AccessPattern::default()
            },
            3,
            10_000_000,
        );
        assert!(eng.done());
        let hit_rate = eng.stats.hits as f64 / (eng.stats.hits + eng.stats.misses) as f64;
        assert!(hit_rate > 0.8, "small working set must mostly hit: {hit_rate}");
    }

    #[test]
    fn directories_quiesce_after_completion() {
        let (eng, _) = pump(
            AccessPattern { accesses_per_core: 200, ..AccessPattern::shared_heavy() },
            4,
            10_000_000,
        );
        assert!(eng.done());
        // Give in-flight acks/writebacks time to land: the protocol may
        // finish the *accesses* before PutAcks drain, but directories must
        // not be stuck busy.
        assert!(eng.dirs.iter().all(|d| d.is_quiescent()), "no stuck transactions");
    }
}
