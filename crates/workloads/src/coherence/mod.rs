//! A directory-based MESI coherence substrate.
//!
//! The paper's simulated CMP runs "a 2-level cache and directory-based
//! MESI protocol" (Table IV); its NoC traffic is cache/coherence messages.
//! The phase-model [`crate::TrafficEngine`] abstracts that traffic
//! statistically; this module provides the higher-fidelity alternative: a
//! real MESI protocol — per-core private L1s, a distributed L2 home
//! directory, invalidations, forwards and writebacks — driven by synthetic
//! per-core address streams. NoC traffic *emerges* from memory accesses
//! instead of being sampled from a profile.
//!
//! ## Protocol summary
//!
//! Three virtual networks keep the protocol deadlock-free:
//! requests ([`VNET_COH_REQUEST`]), forwards/invalidations
//! ([`VNET_COH_FORWARD`]) and responses ([`VNET_COH_RESPONSE`]). Platforms
//! that add SnackNoC traffic place it on a fourth vnet.
//!
//! * **Read miss** — `GetS` to the line's home bank. Uncached lines return
//!   exclusive data (E); shared lines add a sharer; a modified line makes
//!   the home *busy* while the owner forwards data to the requestor and
//!   copies back to the home.
//! * **Write miss / upgrade** — `GetM`. Shared lines are invalidated
//!   (sharers ack directly to the requestor); a modified line is forwarded
//!   from its owner.
//! * **Eviction** — dirty victims write back with `PutM`; the evicting
//!   core retains the data until `PutAck`, so forwards that race with the
//!   writeback are still served (the home ignores a stale `PutM` whose
//!   sender no longer owns the line).
//!
//! The home serialises conflicting transactions per line with a busy bit
//! and a pending queue — no NACK/retry traffic.

mod cache;
mod directory;
mod engine;
mod msg;

pub use cache::{CacheConfig, L1Cache, LineState};
pub use directory::{Directory, DirectoryStats};
pub use engine::{AccessPattern, CoherentEngine, CoherentStats};
pub use msg::{CohMessage, LineAddr, VNET_COH_FORWARD, VNET_COH_REQUEST, VNET_COH_RESPONSE};
