//! The MESI protocol message vocabulary.

use snacknoc_noc::NodeId;

/// A cache-line address (64 B lines; the value is the line index).
pub type LineAddr = u64;

/// Virtual network carrying core→home requests.
pub const VNET_COH_REQUEST: u8 = 0;
/// Virtual network carrying home→core forwards and invalidations.
pub const VNET_COH_FORWARD: u8 = 1;
/// Virtual network carrying data, acks and writebacks.
pub const VNET_COH_RESPONSE: u8 = 2;

/// A coherence protocol message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CohMessage {
    /// Read request: core wants the line in S (or E if uncached).
    GetS {
        /// Requesting core.
        core: NodeId,
        /// The line.
        line: LineAddr,
    },
    /// Write request: core wants the line in M.
    GetM {
        /// Requesting core.
        core: NodeId,
        /// The line.
        line: LineAddr,
    },
    /// Writeback of an evicted owned line (dirty data for M, a clean
    /// ownership-release notice for E — silent E evictions would leave the
    /// directory believing a departed owner still has the line).
    PutM {
        /// Evicting core.
        core: NodeId,
        /// The line.
        line: LineAddr,
        /// Whether data travels with the writeback (M) or not (E).
        dirty: bool,
    },
    /// Home/owner → requestor: the line's data.
    Data {
        /// Destination core.
        core: NodeId,
        /// The line.
        line: LineAddr,
        /// Grant exclusive (E/M) rather than shared (S).
        exclusive: bool,
        /// Invalidation acks the requestor must additionally collect
        /// before the write completes (GetM on a shared line).
        acks_needed: u32,
    },
    /// Home → current owner: forward the line to `requestor` for reading
    /// (owner downgrades M→S and copies back to the home).
    FwdGetS {
        /// Current owner.
        owner: NodeId,
        /// Reading core.
        requestor: NodeId,
        /// The line.
        line: LineAddr,
    },
    /// Home → current owner: forward the line to `requestor` for writing
    /// (owner invalidates).
    FwdGetM {
        /// Current owner.
        owner: NodeId,
        /// Writing core.
        requestor: NodeId,
        /// The line.
        line: LineAddr,
    },
    /// Home → sharer: invalidate and ack to `requestor`.
    Inv {
        /// Sharer to invalidate.
        sharer: NodeId,
        /// Core collecting the acks.
        requestor: NodeId,
        /// The line.
        line: LineAddr,
    },
    /// Sharer → requestor: invalidation done.
    InvAck {
        /// Core collecting the acks.
        requestor: NodeId,
        /// The line.
        line: LineAddr,
    },
    /// Ex-owner → home: copy-back after a `FwdGetS`/`FwdGetM`, releasing
    /// the home's busy state (carries whether the owner kept a shared
    /// copy).
    CopyBack {
        /// The line.
        line: LineAddr,
        /// The core that served the forward.
        from: NodeId,
        /// The requestor the data went to (the new owner/sharer).
        requestor: NodeId,
        /// Whether the server kept an S copy (FwdGetS) or invalidated
        /// (FwdGetM).
        kept_shared: bool,
    },
    /// Home → evicting core: `PutM` processed (or recognised as stale).
    PutAck {
        /// The evicting core.
        core: NodeId,
        /// The line.
        line: LineAddr,
    },
}

impl CohMessage {
    /// The vnet this message travels on (request/forward/response classes
    /// keep the protocol deadlock-free).
    pub fn vnet(self) -> u8 {
        match self {
            CohMessage::GetS { .. } | CohMessage::GetM { .. } | CohMessage::PutM { .. } => {
                VNET_COH_REQUEST
            }
            CohMessage::FwdGetS { .. } | CohMessage::FwdGetM { .. } | CohMessage::Inv { .. } => {
                VNET_COH_FORWARD
            }
            CohMessage::Data { .. }
            | CohMessage::InvAck { .. }
            | CohMessage::CopyBack { .. }
            | CohMessage::PutAck { .. } => VNET_COH_RESPONSE,
        }
    }

    /// On-wire size: data-bearing messages carry a 64 B line + 8 B header.
    pub fn size_bytes(self) -> u32 {
        match self {
            CohMessage::Data { .. } | CohMessage::CopyBack { .. } => 72,
            CohMessage::PutM { dirty, .. }
                if dirty => {
                    72
                }
            _ => 8,
        }
    }

    /// The line this message concerns.
    pub fn line(self) -> LineAddr {
        match self {
            CohMessage::GetS { line, .. }
            | CohMessage::GetM { line, .. }
            | CohMessage::PutM { line, .. }
            | CohMessage::Data { line, .. }
            | CohMessage::FwdGetS { line, .. }
            | CohMessage::FwdGetM { line, .. }
            | CohMessage::Inv { line, .. }
            | CohMessage::InvAck { line, .. }
            | CohMessage::CopyBack { line, .. }
            | CohMessage::PutAck { line, .. } => line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vnet_classes_are_disjoint_and_acyclic() {
        let c = NodeId::new(0);
        assert_eq!(CohMessage::GetS { core: c, line: 1 }.vnet(), VNET_COH_REQUEST);
        assert_eq!(CohMessage::PutM { core: c, line: 1, dirty: true }.vnet(), VNET_COH_REQUEST);
        assert_eq!(
            CohMessage::Inv { sharer: c, requestor: c, line: 1 }.vnet(),
            VNET_COH_FORWARD
        );
        assert_eq!(
            CohMessage::FwdGetM { owner: c, requestor: c, line: 1 }.vnet(),
            VNET_COH_FORWARD
        );
        assert_eq!(
            CohMessage::Data { core: c, line: 1, exclusive: false, acks_needed: 0 }.vnet(),
            VNET_COH_RESPONSE
        );
        assert_eq!(CohMessage::PutAck { core: c, line: 1 }.vnet(), VNET_COH_RESPONSE);
    }

    #[test]
    fn data_messages_are_line_sized() {
        let c = NodeId::new(2);
        assert_eq!(CohMessage::PutM { core: c, line: 0, dirty: true }.size_bytes(), 72);
        assert_eq!(CohMessage::PutM { core: c, line: 0, dirty: false }.size_bytes(), 8);
        assert_eq!(CohMessage::GetS { core: c, line: 0 }.size_bytes(), 8);
        assert_eq!(
            CohMessage::CopyBack { line: 0, from: c, requestor: c, kept_shared: true }.size_bytes(),
            72
        );
        assert_eq!(CohMessage::InvAck { requestor: c, line: 3 }.line(), 3);
    }
}
