//! The closed-loop traffic engine: plays a [`BenchmarkProfile`] over a mesh,
//! producing packet injections and consuming deliveries.
//!
//! The engine is network-agnostic: callers pump it with [`TrafficEngine::tick`]
//! (returns the packets to inject this cycle) and [`TrafficEngine::deliver`]
//! (hand over every ejected communication packet). This lets the same engine
//! drive a plain NoC (Figs. 1–3) or share the NoC with the SnackNoC platform
//! (Figs. 11–13) without owning the network.

use crate::message::{CmpMessage, VNET_REQUEST, VNET_RESPONSE};
use crate::profile::{BenchmarkProfile, DestModel};
use snacknoc_noc::{Dir, Mesh, NodeId, PacketSpec, TrafficClass};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Service latency of a shared-L2 bank hit, in cycles.
pub const L2_SERVICE_LATENCY: u64 = 10;
/// Service latency of a memory-controller access, in cycles.
pub const MEM_SERVICE_LATENCY: u64 = 80;
/// Length of an on/off burst run, in *requests* (scale-invariant).
const BURST_RUN: u64 = 8;
/// Interval compression inside a burst.
const BURST_SPEEDUP: f64 = 4.0;



/// Marks a slot whose request is still in flight.
const IN_FLIGHT: u64 = u64::MAX;

/// Per-core issue state.
///
/// Each core owns `outstanding` *slots*; a slot's lifecycle is
/// issue → (network + service + network) → response → think → issue.
/// Because the think timer starts when the response arrives, application
/// runtime responds to NoC latency — the property the paper's Fig. 1
/// resource-starvation study and Figs. 12–13 interference studies measure.
#[derive(Clone, Debug)]
struct CoreState {
    node: NodeId,
    phase: usize,
    issued_in_phase: u64,
    completed: u64,
    /// Per-slot ready time ([`IN_FLIGHT`] while a request is outstanding).
    slots: Vec<u64>,
    next_req_id: u64,
}

/// A response scheduled to leave a service node at a future cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct PendingResponse {
    due: u64,
    /// Tie-break for deterministic heap ordering.
    seq: u64,
    from: NodeId,
    msg: CmpMessage,
}

impl Ord for PendingResponse {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

impl PartialOrd for PendingResponse {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Plays one benchmark profile on all cores of a mesh.
///
/// See the [module documentation](self) for the pumping protocol.
#[derive(Debug)]
pub struct TrafficEngine {
    profile: BenchmarkProfile,
    mesh: Mesh,
    mem_controllers: Vec<NodeId>,
    cores: Vec<CoreState>,
    responses: BinaryHeap<Reverse<PendingResponse>>,
    seed: u64,
    response_seq: u64,
    total_issued: u64,
    total_completed: u64,
    finished_at: Option<u64>,
}

impl TrafficEngine {
    /// Creates an engine running `profile` on every node of `mesh`,
    /// deterministically seeded with `seed`.
    pub fn new(profile: BenchmarkProfile, mesh: Mesh, seed: u64) -> Self {
        // Stagger slot start-times so cores ramp in rather than firing a
        // synchronized burst at cycle zero.
        let stagger = profile
            .phases
            .first()
            .map(|p| (p.think_time / profile.outstanding as f64).ceil() as u64)
            .unwrap_or(1)
            .max(1);
        let cores = mesh
            .nodes()
            .map(|node| CoreState {
                node,
                phase: 0,
                issued_in_phase: 0,
                completed: 0,
                slots: (0..profile.outstanding).map(|i| i as u64 * stagger).collect(),
                next_req_id: 0,
            })
            .collect();
        TrafficEngine {
            mem_controllers: mesh.corner_nodes(),
            profile,
            mesh,
            cores,
            responses: BinaryHeap::new(),
            seed,
            response_seq: 0,
            total_issued: 0,
            total_completed: 0,
            finished_at: None,
        }
    }

    /// Whether every core has issued and received all its requests.
    pub fn done(&self) -> bool {
        self.finished_at.is_some()
    }

    /// The cycle at which the last response arrived (the benchmark's
    /// runtime), if finished.
    pub fn finished_at(&self) -> Option<u64> {
        self.finished_at
    }

    /// Requests issued so far across all cores.
    pub fn issued(&self) -> u64 {
        self.total_issued
    }

    /// Requests completed (response received) so far across all cores.
    pub fn completed(&self) -> u64 {
        self.total_completed
    }

    /// Total requests the whole run will issue.
    pub fn total_requests(&self) -> u64 {
        self.profile.requests_per_core() * self.mesh.node_count() as u64
    }

    /// Produces the packets to inject at `cycle`: due service responses and
    /// new core requests (at most one new request per core per cycle).
    pub fn tick(&mut self, cycle: u64) -> Vec<PacketSpec<CmpMessage>> {
        let mut out = Vec::new();
        // Due responses leave their service node.
        while let Some(Reverse(r)) = self.responses.peek() {
            if r.due > cycle {
                break;
            }
            let Reverse(r) = self.responses.pop().expect("peeked above");
            out.push(PacketSpec::new(
                r.from,
                r.msg.core(),
                VNET_RESPONSE,
                TrafficClass::Communication,
                r.msg.size_bytes(),
                r.msg,
            ));
        }
        // New requests.
        for c in 0..self.cores.len() {
            if let Some(spec) = self.try_issue(c, cycle) {
                out.push(spec);
            }
        }
        out
    }

    /// The earliest cycle at which [`TrafficEngine::tick`] can produce a
    /// packet, or `None` if the engine is drained (every request issued and
    /// nothing in the service heap — only a delivery re-wakes it).
    ///
    /// Between now and the returned cycle, `tick` is a pure no-op: no
    /// response is due and no slot's think timer has expired, and neither
    /// changes without the passage of time or a delivery.
    pub fn next_event_cycle(&self) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut merge = |cycle: u64| {
            next = Some(next.map_or(cycle, |n: u64| n.min(cycle)));
        };
        if let Some(Reverse(r)) = self.responses.peek() {
            merge(r.due);
        }
        for core in &self.cores {
            if core.phase >= self.profile.phases.len() {
                continue;
            }
            for &ready in &core.slots {
                if ready != IN_FLIGHT {
                    merge(ready);
                }
            }
        }
        next
    }

    /// Hands the engine a delivered communication message.
    ///
    /// Requests arriving at a service node schedule a response; responses
    /// arriving at their core retire the transaction.
    pub fn deliver(&mut self, cycle: u64, at: NodeId, msg: CmpMessage) {
        if msg.is_request() {
            let latency = if self.mem_controllers.contains(&at) {
                MEM_SERVICE_LATENCY
            } else {
                L2_SERVICE_LATENCY
            };
            let resp = match msg {
                CmpMessage::ReadReq { core, req_id } => CmpMessage::ReadResp { core, req_id },
                CmpMessage::WriteReq { core, req_id } => CmpMessage::WriteAck { core, req_id },
                _ => unreachable!("is_request checked"),
            };
            self.response_seq += 1;
            self.responses.push(Reverse(PendingResponse {
                due: cycle + latency,
                seq: self.response_seq,
                from: at,
                msg: resp,
            }));
        } else {
            let c = msg.core().index();
            let req_id = match msg {
                CmpMessage::ReadResp { req_id, .. } | CmpMessage::WriteAck { req_id, .. } => req_id,
                _ => unreachable!("response kinds matched above"),
            };
            let slot = (req_id & 0xff) as usize;
            let think = self.sample_think(c, req_id >> 8);
            let core = &mut self.cores[c];
            debug_assert_eq!(core.slots[slot], IN_FLIGHT, "response without outstanding request");
            core.slots[slot] = cycle + think;
            core.completed += 1;
            self.total_completed += 1;
            if self.total_completed == self.total_requests() && self.finished_at.is_none() {
                self.finished_at = Some(cycle);
            }
        }
    }

    /// A uniform [0, 1) draw for decision `salt` of request `k` on core `c`.
    fn unit(&self, c: usize, k: u64, salt: u64) -> f64 {
        crate::hashrand::unit(self.seed, c as u64, k, salt)
    }

    /// The think time after request `k` of core `c` completes, applying the
    /// scale-invariant burst modulation: bursty phases compress runs of
    /// [`BURST_RUN`] requests and stretch the gaps so the utilization
    /// time-series is spiky at any workload scale. Fully determined by
    /// `(seed, core, k)`, independent of delivery order.
    fn sample_think(&self, c: usize, k: u64) -> u64 {
        let core = &self.cores[c];
        let phase_idx = core.phase.min(self.profile.phases.len() - 1);
        let phase = self.profile.phases[phase_idx];
        let mut interval = phase.think_time;
        if phase.burstiness > 0.0 {
            let in_burst = self.unit(c, k / BURST_RUN, 4) < 0.5;
            if in_burst {
                interval = phase.think_time / BURST_SPEEDUP;
            } else {
                interval = phase.think_time * (1.0 + phase.burstiness * (BURST_SPEEDUP - 1.0));
            }
        }
        let exp: f64 = -(1.0 - self.unit(c, k, 3)).ln();
        (interval * exp).max(1.0) as u64
    }

    fn try_issue(&mut self, c: usize, cycle: u64) -> Option<PacketSpec<CmpMessage>> {
        let (phase, node, slot) = {
            let core = &self.cores[c];
            if core.phase >= self.profile.phases.len() {
                return None;
            }
            let slot = core
                .slots
                .iter()
                .position(|&ready| ready != IN_FLIGHT && ready <= cycle)?;
            (self.profile.phases[core.phase], core.node, slot)
        };
        let k = self.cores[c].next_req_id;
        let dst = self.sample_dest(c, k, node, phase.dest);
        let is_write = self.unit(c, k, 2) < phase.write_fraction;
        let core = &mut self.cores[c];
        // The slot index rides in the low byte of the request id so the
        // response can free the right slot (and recover the request index
        // for deterministic think-time sampling).
        let req_id = (k << 8) | slot as u64;
        core.next_req_id += 1;
        let msg = if is_write {
            CmpMessage::WriteReq { core: node, req_id }
        } else {
            CmpMessage::ReadReq { core: node, req_id }
        };
        core.slots[slot] = IN_FLIGHT;
        core.issued_in_phase += 1;
        self.total_issued += 1;
        if core.issued_in_phase >= phase.requests_per_core {
            core.phase += 1;
            core.issued_in_phase = 0;
        }
        Some(PacketSpec::new(
            node,
            dst,
            VNET_REQUEST,
            TrafficClass::Communication,
            msg.size_bytes(),
            msg,
        ))
    }

    fn sample_dest(&self, c: usize, k: u64, from: NodeId, model: DestModel) -> NodeId {
        match model {
            DestModel::L2Interleaved => {
                let u = self.unit(c, k, 1);
                NodeId::new((u * self.mesh.node_count() as f64) as usize)
            }
            DestModel::MemoryHotspot => {
                let u = self.unit(c, k, 5);
                self.mem_controllers[(u * self.mem_controllers.len() as f64) as usize]
            }
            DestModel::Mixed { mem_fraction } => {
                if self.unit(c, k, 6) < mem_fraction {
                    self.sample_dest(c, k, from, DestModel::MemoryHotspot)
                } else {
                    self.sample_dest(c, k, from, DestModel::L2Interleaved)
                }
            }
            DestModel::Neighbor => {
                let neighbors: Vec<NodeId> = Dir::ROUTER_DIRS
                    .iter()
                    .filter_map(|&d| self.mesh.neighbor(from, d))
                    .collect();
                let u = self.unit(c, k, 7);
                neighbors[(u * neighbors.len() as f64) as usize]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Phase;

    fn tiny_profile() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "tiny",
            phases: vec![Phase::smooth(5, 10.0)],
            outstanding: 4,
        }
    }

    /// Pump the engine against a perfect zero-latency "network" that
    /// teleports packets: checks the closed loop itself terminates.
    #[test]
    fn closed_loop_terminates_on_ideal_network() {
        let mesh = Mesh::new(4, 4);
        let mut eng = TrafficEngine::new(tiny_profile(), mesh, 1);
        let mut cycle = 0;
        while !eng.done() && cycle < 100_000 {
            cycle += 1;
            let specs = eng.tick(cycle);
            for s in specs {
                eng.deliver(cycle, s.dst, s.payload);
            }
        }
        assert!(eng.done(), "engine must finish");
        assert_eq!(eng.completed(), 16 * 5);
        assert_eq!(eng.issued(), eng.completed());
        assert!(eng.finished_at().unwrap() > 0);
    }

    #[test]
    fn window_limits_outstanding() {
        let mesh = Mesh::new(2, 2);
        let profile = BenchmarkProfile {
            name: "w",
            phases: vec![Phase::smooth(100, 1.0)],
            outstanding: 2,
        };
        let mut eng = TrafficEngine::new(profile, mesh, 3);
        // Never deliver responses: issues must stall at the window.
        let mut total = 0;
        for cycle in 1..1_000 {
            let specs = eng.tick(cycle);
            total += specs.iter().filter(|s| s.payload.is_request()).count();
            // Requests delivered to the service node generate responses we
            // deliberately drop (they stay in the heap unread).
        }
        assert_eq!(total, 2 * 4, "each core stalls at 2 outstanding");
        assert!(!eng.done());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mesh = Mesh::new(4, 4);
        let run = |seed| {
            let mut eng = TrafficEngine::new(tiny_profile(), mesh, seed);
            let mut log = Vec::new();
            for cycle in 1..500 {
                for s in eng.tick(cycle) {
                    log.push((cycle, s.src.index(), s.dst.index()));
                    eng.deliver(cycle, s.dst, s.payload);
                }
            }
            log
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds give different traffic");
    }

    #[test]
    fn memory_hotspot_targets_corners() {
        let mesh = Mesh::new(4, 4);
        let profile = BenchmarkProfile {
            name: "hot",
            phases: vec![Phase::smooth(20, 5.0).with_dest(DestModel::MemoryHotspot)],
            outstanding: 8,
        };
        let mut eng = TrafficEngine::new(profile, mesh, 11);
        let corners = mesh.corner_nodes();
        for cycle in 1..5_000 {
            for s in eng.tick(cycle) {
                if s.payload.is_request() {
                    assert!(corners.contains(&s.dst));
                }
                eng.deliver(cycle, s.dst, s.payload);
            }
        }
        assert!(eng.done());
    }

    #[test]
    fn responses_wait_for_service_latency() {
        let mesh = Mesh::new(4, 4);
        let mut eng = TrafficEngine::new(tiny_profile(), mesh, 5);
        let core = mesh.node_at(0, 0);
        let l2 = mesh.node_at(1, 1);
        eng.deliver(100, l2, CmpMessage::ReadReq { core, req_id: 0 });
        // Response must not appear before the L2 service latency elapses.
        let early = eng.tick(100 + L2_SERVICE_LATENCY - 1);
        assert!(early.iter().all(|s| s.payload.is_request()));
        let due = eng.tick(100 + L2_SERVICE_LATENCY);
        assert!(due
            .iter()
            .any(|s| matches!(s.payload, CmpMessage::ReadResp { .. }) && s.src == l2));
    }
}
