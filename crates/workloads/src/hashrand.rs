//! Hash-derived randomness for traffic engines — a thin re-export of
//! [`snacknoc_prng::hashrand`] so the SplitMix64 constants live in exactly
//! one place.
//!
//! Engines derive every random decision by hashing
//! `(seed, core, event index, purpose)` instead of consuming a sequential
//! RNG stream; see the `snacknoc-prng` crate docs for the common-random-
//! numbers contract this upholds.

pub use snacknoc_prng::hashrand::{splitmix, unit};

#[cfg(test)]
mod tests {
    use super::*;

    /// Migration regression: the value the private pre-`snacknoc-prng`
    /// implementation produced, pinned bit-for-bit. Kernel inputs and thus
    /// figure outputs (Figs. 1, 12, 13) must be identical across the
    /// migration.
    #[test]
    fn unit_fingerprint_matches_pre_migration_implementation() {
        assert_eq!(unit(7, 3, 0, 1).to_bits(), 0x3FE2_EBC6_81F0_250E);
        assert_eq!(unit(7, 3, 0, 1), 0.591_281_179_223_331_5);
    }

    #[test]
    fn splitmix_is_reexported_and_stable() {
        // First SplitMix64 output for state 0 (published reference value).
        assert_eq!(splitmix(0), 0xE220_A839_7B1D_CDAF);
    }
}
