//! Input generators for the four SnackNoC linear-algebra kernels
//! (paper Table III: SGEMM, Reduction, MAC, SPMV).
//!
//! Values are kept small (|x| < 8) so that 32-bit Q16.16 fixed-point
//! evaluation on the RCUs cannot overflow for the kernel sizes used in the
//! experiments.

use snacknoc_prng::Rng;

/// The four SnackNoC kernels of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Kernel {
    /// Dense matrix–matrix multiplication (paper input: 4K×4K).
    Sgemm,
    /// Sum-reduction of a vector (paper input: 640M elements).
    Reduction,
    /// Element-wise multiply-accumulate of two vectors (paper: 640K).
    Mac,
    /// Sparse matrix × dense vector, 70 % sparsity (paper: 4096).
    Spmv,
}

impl Kernel {
    /// All four kernels, in paper order.
    pub const ALL: [Kernel; 4] = [Kernel::Sgemm, Kernel::Reduction, Kernel::Mac, Kernel::Spmv];

    /// The display name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Sgemm => "SGEMM",
            Kernel::Reduction => "Reduction",
            Kernel::Mac => "MAC",
            Kernel::Spmv => "SPMV",
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A dense row-major matrix of `f64` samples.
#[derive(Clone, PartialEq, Debug)]
pub struct DenseMatrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data, `rows * cols` entries.
    pub data: Vec<f64>,
}

impl DenseMatrix {
    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }
}

/// A sparse matrix in compressed-sparse-row form.
#[derive(Clone, PartialEq, Debug)]
pub struct CsrMatrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes the entries of row `r`.
    pub row_ptr: Vec<usize>,
    /// Column index of each stored entry.
    pub col_idx: Vec<usize>,
    /// Value of each stored entry.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are zero.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Dense `y = A x` reference product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| {
                (self.row_ptr[r]..self.row_ptr[r + 1])
                    .map(|i| self.values[i] * x[self.col_idx[i]])
                    .sum()
            })
            .collect()
    }
}

fn small_value(rng: &mut Rng) -> f64 {
    // Uniform in [-2, 2), quantised to 1/256 so fixed-point round trips are
    // exact in Q16.16.
    (rng.range_i64(-512..512) as f64) / 256.0
}

/// Generates a `rows × cols` dense matrix with seeded small values.
pub fn dense_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = Rng::new(seed);
    let data = (0..rows * cols).map(|_| small_value(&mut rng)).collect();
    DenseMatrix { rows, cols, data }
}

/// Generates a length-`n` vector with seeded small values.
pub fn vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| small_value(&mut rng)).collect()
}

/// Generates an `n × n` CSR matrix with the given `sparsity` (fraction of
/// zero entries — the paper uses 0.7 for SPMV).
///
/// Every row is guaranteed at least one stored entry so row reductions are
/// never empty.
pub fn sparse_matrix(n: usize, sparsity: f64, seed: u64) -> CsrMatrix {
    assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0, 1)");
    let mut rng = Rng::new(seed);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0);
    for _ in 0..n {
        let row_start = values.len();
        for c in 0..n {
            if rng.unit_f64() >= sparsity {
                col_idx.push(c);
                values.push(small_value(&mut rng));
            }
        }
        if values.len() == row_start {
            // Guarantee a non-empty row.
            col_idx.push(rng.range_usize(0..n));
            values.push(small_value(&mut rng));
        }
        row_ptr.push(values.len());
    }
    CsrMatrix { rows: n, cols: n, row_ptr, col_idx, values }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matrix_is_seeded_and_sized() {
        let a = dense_matrix(8, 6, 1);
        let b = dense_matrix(8, 6, 1);
        let c = dense_matrix(8, 6, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.data.len(), 48);
        assert!(a.data.iter().all(|v| v.abs() <= 2.0));
        assert_eq!(a.at(7, 5), a.data[47]);
    }

    #[test]
    fn sparse_matrix_has_requested_sparsity() {
        let m = sparse_matrix(64, 0.7, 3);
        let s = m.sparsity();
        assert!((0.6..0.8).contains(&s), "sparsity {s}");
        assert_eq!(m.row_ptr.len(), 65);
        // Every row non-empty.
        for r in 0..64 {
            assert!(m.row_ptr[r + 1] > m.row_ptr[r]);
        }
        // Column indices in range and sorted per row.
        for r in 0..64 {
            let cols = &m.col_idx[m.row_ptr[r]..m.row_ptr[r + 1]];
            assert!(cols.iter().all(|&c| c < 64));
            assert!(cols.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn csr_multiply_matches_dense() {
        let m = sparse_matrix(16, 0.5, 9);
        let x = vector(16, 10);
        let y = m.multiply(&x);
        // Dense reference.
        let mut dense = vec![vec![0.0; 16]; 16];
        for (r, row) in dense.iter_mut().enumerate() {
            for i in m.row_ptr[r]..m.row_ptr[r + 1] {
                row[m.col_idx[i]] += m.values[i];
            }
        }
        for (r, row) in dense.iter().enumerate() {
            let want: f64 = (0..16).map(|c| row[c] * x[c]).sum();
            assert!((y[r] - want).abs() < 1e-9);
        }
    }

    #[test]
    fn values_are_fixed_point_exact() {
        // Quantised to 1/256: representable exactly in Q16.16.
        for v in vector(100, 5) {
            let q = (v * 65536.0).round() / 65536.0;
            assert_eq!(v, q);
        }
    }

    #[test]
    fn kernel_names() {
        assert_eq!(Kernel::ALL.len(), 4);
        assert_eq!(Kernel::Sgemm.to_string(), "SGEMM");
    }
}
