//! # snacknoc-workloads
//!
//! Synthetic CMP traffic models for the 16 benchmark applications of the
//! SnackNoC paper (Table III: PARSEC 3.0, Splash2X and FastForward2 suites),
//! plus input generators for the four linear-algebra kernels.
//!
//! The paper drives its NoC with SynchroTrace traces of the real
//! applications; those traces are not available, so each benchmark is
//! modelled as a **closed-loop phase program**: every core issues cache/
//! memory requests through a bounded outstanding-request window, paced by
//! per-phase mean intervals and burstiness, toward per-phase destination
//! distributions (distributed L2 banks, corner memory controllers, or
//! neighbours). Because the loop is closed, added NoC contention delays
//! responses, which delays subsequent issues — so *application runtime is
//! an emergent function of network interference*, exactly the quantity the
//! paper's QoS experiments (Figs. 12–13) measure.
//!
//! Profiles are calibrated against the utilization characterisation in
//! §II-A of the paper (e.g. FMM median crossbar utilization ≈ 0.8 %,
//! Cholesky ≈ 0.5 %, LULESH ≈ 9.3 % with spikes to ≈ 36 %, Graph500 median
//! ≈ 13 % with spikes to ≈ 42 %, Radix ≈ 20× CoMD's relative load).
//!
//! ## Example
//!
//! ```
//! use snacknoc_workloads::{suite, runner};
//! use snacknoc_noc::NocConfig;
//!
//! let profile = suite::profile(suite::Benchmark::Fmm).scaled(0.02);
//! let result = runner::run_benchmark(&profile, NocConfig::dapper(), 7).unwrap();
//! assert!(result.runtime_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coherence;
pub mod engine;
pub mod hashrand;
pub mod kernels;
pub mod message;
pub mod profile;
pub mod runner;
pub mod suite;
pub mod trace;

pub use engine::TrafficEngine;
pub use message::CmpMessage;
pub use profile::{BenchmarkProfile, DestModel, Phase};
pub use runner::{run_benchmark, RunResult};
pub use suite::Benchmark;
