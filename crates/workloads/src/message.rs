//! The CMP coherence/memory message vocabulary carried by communication
//! packets.

use snacknoc_noc::NodeId;

/// A baseline CMP communication message: the request/response protocol the
//  traffic engine plays over the NoC.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpMessage {
    /// A read request from `core` to an L2 bank or memory controller.
    ReadReq {
        /// The issuing core's node.
        core: NodeId,
        /// Per-core request sequence number.
        req_id: u64,
    },
    /// A write/writeback request (carries a data payload on the wire).
    WriteReq {
        /// The issuing core's node.
        core: NodeId,
        /// Per-core request sequence number.
        req_id: u64,
    },
    /// A data response to a [`CmpMessage::ReadReq`].
    ReadResp {
        /// The core awaiting the data.
        core: NodeId,
        /// Request being answered.
        req_id: u64,
    },
    /// An acknowledgement of a [`CmpMessage::WriteReq`].
    WriteAck {
        /// The core awaiting the ack.
        core: NodeId,
        /// Request being answered.
        req_id: u64,
    },
}

impl CmpMessage {
    /// Whether this is a request (travels on the request vnet).
    pub fn is_request(self) -> bool {
        matches!(self, CmpMessage::ReadReq { .. } | CmpMessage::WriteReq { .. })
    }

    /// The core that originated the transaction.
    pub fn core(self) -> NodeId {
        match self {
            CmpMessage::ReadReq { core, .. }
            | CmpMessage::WriteReq { core, .. }
            | CmpMessage::ReadResp { core, .. }
            | CmpMessage::WriteAck { core, .. } => core,
        }
    }

    /// On-wire size in bytes: control messages are 8 B, data-bearing
    /// messages carry a 64 B cache block plus an 8 B header.
    pub fn size_bytes(self) -> u32 {
        match self {
            CmpMessage::ReadReq { .. } | CmpMessage::WriteAck { .. } => 8,
            CmpMessage::WriteReq { .. } | CmpMessage::ReadResp { .. } => 72,
        }
    }
}

/// Virtual network used by CMP requests.
pub const VNET_REQUEST: u8 = 0;
/// Virtual network used by CMP responses (separate from requests to avoid
/// protocol deadlock in the closed request/response loop).
pub const VNET_RESPONSE: u8 = 1;
/// Virtual network dedicated to SnackNoC tokens (paper §III-B).
pub const VNET_SNACK: u8 = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_classes() {
        let c = NodeId::new(3);
        assert!(CmpMessage::ReadReq { core: c, req_id: 0 }.is_request());
        assert!(CmpMessage::WriteReq { core: c, req_id: 0 }.is_request());
        assert!(!CmpMessage::ReadResp { core: c, req_id: 0 }.is_request());
        assert!(!CmpMessage::WriteAck { core: c, req_id: 0 }.is_request());
        assert_eq!(CmpMessage::ReadReq { core: c, req_id: 0 }.size_bytes(), 8);
        assert_eq!(CmpMessage::ReadResp { core: c, req_id: 0 }.size_bytes(), 72);
        assert_eq!(CmpMessage::WriteReq { core: c, req_id: 0 }.size_bytes(), 72);
        assert_eq!(CmpMessage::ReadReq { core: c, req_id: 9 }.core(), c);
    }
}
