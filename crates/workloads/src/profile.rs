//! Benchmark traffic profiles: phase programs describing how each CMP
//! application loads the NoC over its execution.

use std::fmt;

/// Where a phase's requests are addressed.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum DestModel {
    /// Block-interleaved shared L2: destinations uniform over all nodes
    /// (the common case for structured shared-memory applications).
    L2Interleaved,
    /// Off-chip phases: destinations are the corner memory controllers.
    MemoryHotspot,
    /// A mixture: `mem_fraction` of requests go to memory controllers, the
    /// rest to L2 banks.
    Mixed {
        /// Fraction of requests addressed to memory controllers (`0..=1`).
        mem_fraction: f64,
    },
    /// Nearest-neighbour exchange (stencil/particle codes): destinations
    /// are mesh neighbours of the issuing core.
    Neighbor,
}

/// One execution phase of a benchmark.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Phase {
    /// Requests each core issues during this phase.
    pub requests_per_core: u64,
    /// Mean think cycles between a slot's response arriving and that slot
    /// issuing its next request (exponential). Effective per-core request
    /// rate ≈ `outstanding / (think_time + transaction latency)`, so
    /// application runtime responds to NoC latency.
    pub think_time: f64,
    /// Burstiness in `[0, 1]`: fraction of traffic compressed into on/off
    /// bursts. 0 = smooth Poisson arrivals, 1 = highly clustered.
    pub burstiness: f64,
    /// Destination distribution.
    pub dest: DestModel,
    /// Fraction of requests that are writes (writes carry data out, acks
    /// return; reads send control out, data returns).
    pub write_fraction: f64,
}

impl Phase {
    /// A smooth phase addressed at the distributed L2.
    pub fn smooth(requests_per_core: u64, think_time: f64) -> Self {
        Phase {
            requests_per_core,
            think_time,
            burstiness: 0.0,
            dest: DestModel::L2Interleaved,
            write_fraction: 0.3,
        }
    }

    /// Sets the burstiness.
    pub fn with_burstiness(mut self, b: f64) -> Self {
        self.burstiness = b;
        self
    }

    /// Sets the destination model.
    pub fn with_dest(mut self, dest: DestModel) -> Self {
        self.dest = dest;
        self
    }

    /// Sets the write fraction.
    pub fn with_writes(mut self, f: f64) -> Self {
        self.write_fraction = f;
        self
    }
}

/// A complete benchmark model: an ordered phase program plus the core's
/// memory-level parallelism.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchmarkProfile {
    /// Benchmark name (paper Table III).
    pub name: &'static str,
    /// Ordered phases; every core walks the program independently.
    pub phases: Vec<Phase>,
    /// Maximum outstanding requests per core (MLP window).
    pub outstanding: usize,
}

impl BenchmarkProfile {
    /// Total requests each core issues across all phases.
    pub fn requests_per_core(&self) -> u64 {
        self.phases.iter().map(|p| p.requests_per_core).sum()
    }

    /// Returns a copy with every phase's request quota scaled by `factor`
    /// (rounded up to at least 1 request). Used to shrink paper-scale
    /// multi-billion-cycle workloads to CI-scale runs while preserving the
    /// phase structure and intensities.
    pub fn scaled(&self, factor: f64) -> BenchmarkProfile {
        assert!(factor > 0.0, "scale factor must be positive");
        let phases = self
            .phases
            .iter()
            .map(|p| Phase {
                requests_per_core: ((p.requests_per_core as f64 * factor).ceil() as u64).max(1),
                ..*p
            })
            .collect();
        BenchmarkProfile { name: self.name, phases, outstanding: self.outstanding }
    }

    /// Approximate zero-load request rate in requests per core per cycle:
    /// each of the `outstanding` slots completes one request per think
    /// time (ignoring transaction latency).
    pub fn mean_request_rate(&self) -> f64 {
        let total: u64 = self.requests_per_core();
        if total == 0 {
            return 0.0;
        }
        let slot_cycles: f64 =
            self.phases.iter().map(|p| p.requests_per_core as f64 * p.think_time).sum();
        total as f64 / (slot_cycles / self.outstanding as f64)
    }
}

impl fmt::Display for BenchmarkProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} phases, {} req/core)",
            self.name,
            self.phases.len(),
            self.requests_per_core()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "test",
            phases: vec![Phase::smooth(100, 50.0), Phase::smooth(200, 10.0).with_burstiness(0.5)],
            outstanding: 8,
        }
    }

    #[test]
    fn totals_and_rates() {
        let p = sample();
        assert_eq!(p.requests_per_core(), 300);
        let rate = p.mean_request_rate();
        // 300 requests over (100*50 + 200*10) / 8 slots = 875 slot-cycles.
        assert!((rate - 300.0 / 875.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_preserves_structure() {
        let p = sample().scaled(0.01);
        assert_eq!(p.phases.len(), 2);
        assert_eq!(p.phases[0].requests_per_core, 1);
        assert_eq!(p.phases[1].requests_per_core, 2);
        assert_eq!(p.phases[1].burstiness, 0.5);
        assert_eq!(p.outstanding, 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = sample().scaled(0.0);
    }

    #[test]
    fn display_mentions_name() {
        assert!(sample().to_string().contains("test"));
    }
}
