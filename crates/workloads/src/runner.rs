//! Standalone benchmark runner: plays one profile over a private NoC and
//! reports runtime plus the slack measurements of paper §II.

use crate::engine::TrafficEngine;
use crate::message::CmpMessage;
use crate::profile::BenchmarkProfile;
use snacknoc_noc::{ConfigError, NetStats, Network, NocConfig};

/// The outcome of a standalone benchmark run.
#[derive(Debug)]
pub struct RunResult {
    /// Cycle at which the last response arrived (application runtime).
    pub runtime_cycles: u64,
    /// Whether the run finished before the safety cap.
    pub finished: bool,
    /// Requests completed.
    pub completed_requests: u64,
    /// Full network statistics (crossbar/link series, occupancy CDF, …).
    pub stats: NetStats,
}

impl RunResult {
    /// Median router crossbar utilization across routers and windows.
    pub fn median_crossbar(&self) -> f64 {
        self.stats.median_crossbar_utilization()
    }

    /// Peak router crossbar utilization.
    pub fn peak_crossbar(&self) -> f64 {
        self.stats.peak_crossbar_utilization()
    }

    /// Median link utilization.
    pub fn median_link(&self) -> f64 {
        self.stats.median_link_utilization()
    }
}

/// Hard cap multiplier: a run is abandoned after this many times its
/// nominal (zero-contention) duration.
const SAFETY_FACTOR: u64 = 20;

/// Runs `profile` to completion on a fresh NoC built from `cfg`.
///
/// Returns the application runtime and the gathered slack statistics.
/// The run aborts (with `finished == false`) if it exceeds a generous
/// safety cap, which indicates a saturated/misconfigured network.
///
/// # Errors
///
/// Returns [`ConfigError`] if `cfg` is invalid.
pub fn run_benchmark(
    profile: &BenchmarkProfile,
    cfg: NocConfig,
    seed: u64,
) -> Result<RunResult, ConfigError> {
    let mut net: Network<CmpMessage> = Network::new(cfg)?;
    let mesh = *net.mesh();
    let mut engine = TrafficEngine::new(profile.clone(), mesh, seed);
    let nominal: f64 = profile
        .phases
        .iter()
        .map(|p| p.requests_per_core as f64 * p.think_time / profile.outstanding as f64)
        .sum();
    let cap = (nominal as u64 + 100_000) * SAFETY_FACTOR;
    drive(&mut net, &mut engine, cap);
    // Flush the trailing partial sampling window so short (CI-scale) runs
    // still report utilization samples instead of a silent zero median.
    let stats = net.finalize_stats().clone();
    Ok(RunResult {
        runtime_cycles: engine.finished_at().unwrap_or(net.cycle()),
        finished: engine.done(),
        completed_requests: engine.completed(),
        stats,
    })
}

/// Pumps `engine` over `net` until the workload finishes or `cap` cycles
/// elapse. Exposed for callers that want to share the loop (e.g. the
/// SnackNoC platform runs the same protocol alongside kernel traffic).
pub fn drive(net: &mut Network<CmpMessage>, engine: &mut TrafficEngine, cap: u64) {
    let nodes: Vec<_> = net.mesh().nodes().collect();
    while !engine.done() && net.cycle() < cap {
        for spec in engine.tick(net.cycle()) {
            net.inject(spec).expect("engine produces valid packets");
        }
        net.step();
        let now = net.cycle();
        for &node in &nodes {
            for pkt in net.drain_ejected(node) {
                engine.deliver(now, node, pkt.payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{profile, Benchmark};

    #[test]
    fn small_run_finishes_and_reports_stats() {
        let p = profile(Benchmark::Fmm).scaled(0.01);
        let r = run_benchmark(&p, NocConfig::dapper().with_sample_window(1_000), 42).unwrap();
        assert!(r.finished, "run must finish");
        assert_eq!(r.completed_requests, p.requests_per_core() * 16);
        assert!(r.runtime_cycles > 0);
        assert!(r.peak_crossbar() > 0.0);
    }

    #[test]
    fn runtime_grows_under_reduced_resources() {
        // The paper's Fig. 1 premise: cutting NoC resources slows the
        // application. Use a heavy benchmark so contention matters.
        let p = profile(Benchmark::Radix).scaled(0.004);
        let full = run_benchmark(&p, NocConfig::axnoc(), 9).unwrap();
        let starved =
            run_benchmark(&p, NocConfig::axnoc().with_channel_width(4), 9).unwrap();
        assert!(full.finished && starved.finished);
        assert!(
            starved.runtime_cycles > full.runtime_cycles,
            "quartered channel width must hurt: {} vs {}",
            starved.runtime_cycles,
            full.runtime_cycles
        );
    }

    #[test]
    fn utilization_ordering_low_vs_high() {
        let low = run_benchmark(
            &profile(Benchmark::Cholesky).scaled(0.02),
            NocConfig::dapper().with_sample_window(1_000),
            3,
        )
        .unwrap();
        let high = run_benchmark(
            &profile(Benchmark::Radix).scaled(0.002),
            NocConfig::dapper().with_sample_window(1_000),
            3,
        )
        .unwrap();
        assert!(
            high.median_crossbar() > low.median_crossbar(),
            "radix {} must exceed cholesky {}",
            high.median_crossbar(),
            low.median_crossbar()
        );
    }

    #[test]
    fn short_run_below_sample_window_still_reports_samples() {
        // Regression for the end_cycle partial-window bug: with the
        // paper-default 10 K-cycle window, a CI-scale run finishing in a
        // few thousand cycles used to report zero samples and
        // `median_crossbar_utilization() == 0.0` silently.
        let p = profile(Benchmark::Radix).scaled(0.0005);
        let r = run_benchmark(&p, NocConfig::dapper(), 7).unwrap(); // 10 K window
        assert!(r.finished);
        assert!(
            r.runtime_cycles < NocConfig::dapper().sample_window,
            "run ({} cycles) must be shorter than the sampling window",
            r.runtime_cycles
        );
        for router in 0..r.stats.router_count() {
            assert!(
                !r.stats.crossbar_series(router).samples().is_empty(),
                "router {router} must have a flushed partial-window sample"
            );
        }
        assert!(r.median_crossbar() > 0.0, "partial window counts toward the median");
    }

    #[test]
    fn deterministic_runtime_for_fixed_seed() {
        let p = profile(Benchmark::Volrend).scaled(0.005);
        let a = run_benchmark(&p, NocConfig::binochs(), 5).unwrap();
        let b = run_benchmark(&p, NocConfig::binochs(), 5).unwrap();
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
    }
}
