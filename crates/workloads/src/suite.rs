//! The 16-benchmark suite of paper Table III, modelled as phase programs.
//!
//! Each profile is calibrated so that, on the paper's DAPPER 4×4 baseline,
//! the *relative* NoC load matches the characterisation in §II-A of the
//! paper: FMM and Cholesky in the low-utilization quartile (median router
//! crossbar usage well under 1 %), LULESH medium-high (~9 % median with
//! spikes), Graph500 high (~13 % median, spikes past 40 %), and Radix
//! sustaining roughly 20× CoMD's relative utilization.

use crate::profile::{BenchmarkProfile, DestModel, Phase};

/// The 16 CMP benchmark applications (paper Table III).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Benchmark {
    /// Splash2X N-body simulation (32768 particles).
    Barnes,
    /// PARSEC EDA kernel (100K nets) — unstructured, cache-miss heavy.
    Canneal,
    /// FastForward2 molecular dynamics proxy.
    CoMD,
    /// Splash2X complex 1D FFT (64K points) — all-to-all transposes.
    Fft,
    /// Splash2X dense matrix triangulation (1500×1500).
    Lu,
    /// Shock hydrodynamics proxy (30³ mesh, 20 iterations).
    Lulesh,
    /// Splash2X matrix factorization (tk29) — low utilization.
    Cholesky,
    /// Splash2X fast multipole N-body (16384 particles) — low utilization.
    Fmm,
    /// Splash2X graphics radiosity.
    Radiosity,
    /// Splash2X integer sort (64M keys) — sustained heavy traffic.
    Radix,
    /// PARSEC 3D rendering (4 balls) — bursty, buffer-sensitive.
    Raytrace,
    /// Splash2X volume rendering.
    Volrend,
    /// Splash2X molecular dynamics, O(n²) forces.
    WaterNSquared,
    /// Splash2X molecular dynamics, spatial decomposition.
    WaterSpatial,
    /// Monte Carlo neutron transport lookup kernel (15M lookups).
    XsBench,
    /// Graph500 BFS (R-MAT scale 15) — high, phase-heavy traffic.
    Graph500,
}

impl Benchmark {
    /// All benchmarks, in paper Table III order.
    pub const ALL: [Benchmark; 16] = [
        Benchmark::Barnes,
        Benchmark::Canneal,
        Benchmark::CoMD,
        Benchmark::Fft,
        Benchmark::Lu,
        Benchmark::Lulesh,
        Benchmark::Cholesky,
        Benchmark::Fmm,
        Benchmark::Radiosity,
        Benchmark::Radix,
        Benchmark::Raytrace,
        Benchmark::Volrend,
        Benchmark::WaterNSquared,
        Benchmark::WaterSpatial,
        Benchmark::XsBench,
        Benchmark::Graph500,
    ];

    /// The display name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Barnes => "Barnes",
            Benchmark::Canneal => "Canneal",
            Benchmark::CoMD => "CoMD",
            Benchmark::Fft => "FFT",
            Benchmark::Lu => "LU",
            Benchmark::Lulesh => "LULESH",
            Benchmark::Cholesky => "Cholesky",
            Benchmark::Fmm => "FMM",
            Benchmark::Radiosity => "Radiosity",
            Benchmark::Radix => "Radix",
            Benchmark::Raytrace => "Raytrace",
            Benchmark::Volrend => "Volrend",
            Benchmark::WaterNSquared => "Water-NSquared",
            Benchmark::WaterSpatial => "Water-Spatial",
            Benchmark::XsBench => "XSBench",
            Benchmark::Graph500 => "Graph500",
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`Benchmark`] from its display name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownBenchmark(pub String);

impl std::fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown benchmark {:?} (expected one of the Table III names)", self.0)
    }
}

impl std::error::Error for UnknownBenchmark {}

impl std::str::FromStr for Benchmark {
    type Err = UnknownBenchmark;

    /// Parses a paper Table III display name, case-insensitively and
    /// ignoring `-`/`_` (so `water-nsquared`, `Water_NSquared` and
    /// `WATERNSQUARED` all parse). Used by the sweep CLI's grid specs.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = |t: &str| {
            t.chars().filter(|c| *c != '-' && *c != '_').collect::<String>().to_ascii_lowercase()
        };
        let wanted = norm(s);
        Benchmark::ALL
            .into_iter()
            .find(|b| norm(b.name()) == wanted)
            .ok_or_else(|| UnknownBenchmark(s.to_string()))
    }
}

/// The traffic profile for `benchmark`, at full (paper) scale.
///
/// Full-scale profiles run for tens of millions of cycles; use
/// [`BenchmarkProfile::scaled`] to shrink them for CI-scale experiments.
pub fn profile(benchmark: Benchmark) -> BenchmarkProfile {
    use Benchmark::*;
    let mixed = |f| DestModel::Mixed { mem_fraction: f };
    let (phases, outstanding): (Vec<Phase>, usize) = match benchmark {
        Barnes => (
            // 4 timesteps: bursty tree build (memory), then smooth force
            // computation over shared data.
            std::iter::repeat_n(
                [
                    Phase::smooth(800, 1_090.0).with_burstiness(0.6).with_dest(mixed(0.5)),
                    Phase::smooth(2_000, 2_750.0),
                ],
                4,
            )
            .flatten()
            .collect(),
            2,
        ),
        Canneal => (
            // Unstructured random swaps: steady cache-missing traffic.
            vec![Phase::smooth(30_000, 730.0).with_burstiness(0.2).with_dest(mixed(0.5))],
            2,
        ),
        CoMD => (
            // Halo exchanges with neighbours between quiet compute spans.
            std::iter::repeat_n(
                [
                    Phase::smooth(400, 1_775.0)
                        .with_burstiness(0.4)
                        .with_dest(DestModel::Neighbor),
                    Phase::smooth(1_200, 4_750.0),
                ],
                5,
            )
            .flatten()
            .collect(),
            2,
        ),
        Fft => (
            // Quiet butterfly compute alternating with all-to-all transposes.
            std::iter::repeat_n(
                [
                    Phase::smooth(1_500, 5_950.0),
                    Phase::smooth(4_000, 250.0).with_burstiness(0.3).with_writes(0.5),
                ],
                3,
            )
            .flatten()
            .collect(),
            2,
        ),
        Lu => (
            // Shrinking active set: utilization decays across the run.
            vec![
                Phase::smooth(8_000, 950.0).with_burstiness(0.2),
                Phase::smooth(6_000, 1_550.0).with_burstiness(0.2),
                Phase::smooth(4_000, 2_950.0).with_burstiness(0.2),
            ],
            2,
        ),
        Lulesh => (
            // 20 hydro iterations: heavy neighbour/L2 communication spikes
            // between quieter stress phases (paper Fig. 2(a)-3).
            std::iter::repeat_n(
                [
                    Phase::smooth(1_200, 80.0).with_dest(mixed(0.25)),
                    Phase::smooth(3_000, 430.0),
                ],
                20,
            )
            .flatten()
            .collect(),
            2,
        ),
        Cholesky => (
            // Sparse factorization of tk29: very low, slightly lumpy load
            // (paper: 0.5 % median crossbar usage).
            vec![Phase::smooth(6_000, 7_550.0).with_burstiness(0.1)],
            2,
        ),
        Fmm => (
            // Multipole passes: mostly quiet with short interaction bursts
            // (paper: 0.8 % median crossbar usage).
            std::iter::repeat_n(
                [
                    Phase::smooth(500, 1_550.0).with_burstiness(0.7),
                    Phase::smooth(2_000, 5_550.0),
                ],
                4,
            )
            .flatten()
            .collect(),
            2,
        ),
        Radiosity => (
            vec![Phase::smooth(9_000, 4_350.0).with_burstiness(0.3)],
            2,
        ),
        Radix => (
            // Streaming integer sort: sustained traffic ≈20× CoMD's rate,
            // with heavy writeback (key permutation) to memory.
            vec![Phase::smooth(120_000, 100.0).with_writes(0.5).with_dest(mixed(0.6))],
            2,
        ),
        Raytrace => (
            // Mostly idle with localized contention bursts — the benchmark
            // the paper uses for the buffer-occupancy CDF (Fig. 3).
            vec![Phase::smooth(18_000, 1_320.0).with_burstiness(0.8).with_dest(mixed(0.3))],
            2,
        ),
        Volrend => (
            vec![Phase::smooth(12_000, 1_950.0).with_burstiness(0.5)],
            2,
        ),
        WaterNSquared => (
            vec![Phase::smooth(7_000, 3_550.0).with_burstiness(0.3)],
            2,
        ),
        WaterSpatial => (
            std::iter::repeat_n(
                [
                    Phase::smooth(600, 2_375.0).with_dest(DestModel::Neighbor),
                    Phase::smooth(1_400, 5_150.0),
                ],
                4,
            )
            .flatten()
            .collect(),
            2,
        ),
        XsBench => (
            // Random cross-section table lookups: steady mixed L2/memory.
            vec![Phase::smooth(40_000, 890.0).with_dest(mixed(0.5))],
            2,
        ),
        Graph500 => (
            // BFS: quiet construction, then wave-front levels that swell and
            // shrink (paper Fig. 2(a)-4: quiet start, heavy after 2B cycles).
            vec![
                Phase::smooth(800, 4_950.0),
                Phase::smooth(8_000, 180.0).with_burstiness(0.1).with_dest(mixed(0.4)),
                Phase::smooth(3_000, 10.0).with_dest(mixed(0.4)),
                Phase::smooth(45_000, 170.0).with_burstiness(0.1).with_dest(mixed(0.4)),
                Phase::smooth(12_000, 330.0).with_burstiness(0.1),
            ],
            2,
        ),
    };
    BenchmarkProfile { name: benchmark.name(), phases, outstanding }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_wellformed() {
        for b in Benchmark::ALL {
            let p = profile(b);
            assert!(!p.phases.is_empty(), "{b} has phases");
            assert!(p.outstanding > 0);
            assert!(p.requests_per_core() > 0);
            for ph in &p.phases {
                assert!(ph.think_time >= 1.0, "{b} think time sane");
                assert!((0.0..=1.0).contains(&ph.burstiness));
                assert!((0.0..=1.0).contains(&ph.write_fraction));
            }
        }
    }

    #[test]
    fn radix_is_about_twenty_times_comd() {
        // Paper §V-C: "Radix consistently generates traffic to the NoC
        // routers at higher relative utilization ... approximately 20×
        // greater than CoMD".
        let radix = profile(Benchmark::Radix).mean_request_rate();
        let comd = profile(Benchmark::CoMD).mean_request_rate();
        // `mean_request_rate` is the zero-latency nominal rate; Radix is
        // latency-bound (short think times), so its *achieved* rate is
        // roughly half nominal, landing the achieved ratio near the paper's
        // ~20x. The nominal ratio sits in a correspondingly wider band; the
        // achieved ordering is covered by the runner tests.
        let ratio = radix / comd;
        assert!((15.0..60.0).contains(&ratio), "radix/comd rate ratio {ratio}");
    }

    #[test]
    fn quartile_ordering_matches_paper() {
        // FMM and Cholesky are low-utilization; LULESH medium-high;
        // Graph500 and Radix high.
        let rate = |b| profile(b).mean_request_rate();
        assert!(rate(Benchmark::Fmm) < rate(Benchmark::Lulesh));
        assert!(rate(Benchmark::Cholesky) < rate(Benchmark::Lulesh));
        assert!(rate(Benchmark::Lulesh) < rate(Benchmark::Radix));
        assert!(rate(Benchmark::Cholesky) < rate(Benchmark::Graph500));
    }

    #[test]
    fn names_round_trip_through_from_str() {
        for b in Benchmark::ALL {
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
            assert_eq!(b.name().to_ascii_uppercase().parse::<Benchmark>().unwrap(), b);
        }
        assert_eq!("water_nsquared".parse::<Benchmark>().unwrap(), Benchmark::WaterNSquared);
        assert_eq!("xsbench".parse::<Benchmark>().unwrap(), Benchmark::XsBench);
        let err = "nosuch".parse::<Benchmark>().unwrap_err();
        assert!(err.to_string().contains("nosuch"));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }
}
