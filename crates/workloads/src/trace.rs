//! Packet-trace recording and open-loop replay.
//!
//! The paper's methodology is trace-driven: SynchroTrace captures each
//! application's events once, and gem5/Garnet replays them against
//! different NoC configurations. This module provides the same workflow
//! for the synthetic engines: record the packet injections of a closed-loop
//! run into a [`Trace`], serialise it to CSV, and replay it *open-loop*
//! (fixed injection times) on any NoC — so different router configurations
//! see byte-identical traffic.
//!
//! Note the standard caveat, which also applies to the paper's traces:
//! open-loop replay does not let the application throttle under
//! congestion, so replayed latencies diverge from closed-loop runs once a
//! configuration saturates.

use crate::engine::TrafficEngine;
use crate::message::CmpMessage;
use crate::profile::BenchmarkProfile;
use snacknoc_noc::{ConfigError, NetStats, Network, NocConfig, NodeId, PacketSpec, TrafficClass};
use std::fmt;
use std::io::{self, BufRead, Write};

/// One recorded packet injection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Injection cycle.
    pub cycle: u64,
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Virtual network.
    pub vnet: u8,
    /// Packet size in bytes.
    pub size_bytes: u32,
}

/// A recorded packet trace, ordered by injection cycle.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// A malformed trace file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceParseError {
    /// 1-indexed line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

impl Trace {
    /// Creates a trace from events (sorted by cycle on construction).
    pub fn new(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| e.cycle);
        Trace { events }
    }

    /// The recorded events, in cycle order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded packets.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The last injection cycle (0 for an empty trace).
    pub fn horizon(&self) -> u64 {
        self.events.last().map_or(0, |e| e.cycle)
    }

    /// Writes the trace as CSV (`cycle,src,dst,vnet,size_bytes`, one
    /// record per line, header included).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn to_csv(&self, mut w: impl Write) -> io::Result<()> {
        writeln!(w, "cycle,src,dst,vnet,size_bytes")?;
        for e in &self.events {
            writeln!(w, "{},{},{},{},{}", e.cycle, e.src, e.dst, e.vnet, e.size_bytes)?;
        }
        Ok(())
    }

    /// Parses a CSV trace written by [`Trace::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceParseError`] on malformed records (I/O errors are
    /// reported as a parse error naming the failing line).
    pub fn from_csv(r: impl BufRead) -> Result<Trace, TraceParseError> {
        let mut events = Vec::new();
        for (i, line) in r.lines().enumerate() {
            let lineno = i + 1;
            let err = |reason: &str| TraceParseError { line: lineno, reason: reason.to_string() };
            let line = line.map_err(|e| err(&format!("io error: {e}")))?;
            let line = line.trim();
            if line.is_empty() || (lineno == 1 && line.starts_with("cycle")) {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 5 {
                return Err(err("expected 5 comma-separated fields"));
            }
            let parse = |s: &str, what: &str| {
                s.trim().parse::<u64>().map_err(|_| err(&format!("bad {what}: {s:?}")))
            };
            events.push(TraceEvent {
                cycle: parse(fields[0], "cycle")?,
                src: parse(fields[1], "src")? as u32,
                dst: parse(fields[2], "dst")? as u32,
                vnet: parse(fields[3], "vnet")? as u8,
                size_bytes: parse(fields[4], "size_bytes")? as u32,
            });
        }
        Ok(Trace::new(events))
    }
}

/// Result of recording a benchmark run.
#[derive(Debug)]
pub struct RecordedRun {
    /// The packet trace.
    pub trace: Trace,
    /// The recording run's application runtime.
    pub runtime_cycles: u64,
    /// Whether the recording run finished.
    pub finished: bool,
}

/// Runs `profile` to completion on `cfg` (like
/// [`crate::runner::run_benchmark`]) while recording every injected packet.
///
/// # Errors
///
/// Returns [`ConfigError`] if `cfg` is invalid.
pub fn record_benchmark(
    profile: &BenchmarkProfile,
    cfg: NocConfig,
    seed: u64,
) -> Result<RecordedRun, ConfigError> {
    let mut net: Network<CmpMessage> = Network::new(cfg)?;
    let mesh = *net.mesh();
    let mut engine = TrafficEngine::new(profile.clone(), mesh, seed);
    let nominal: f64 = profile
        .phases
        .iter()
        .map(|p| p.requests_per_core as f64 * p.think_time / profile.outstanding as f64)
        .sum();
    let cap = (nominal as u64 + 100_000) * 20;
    let nodes: Vec<_> = mesh.nodes().collect();
    let mut events = Vec::new();
    while !engine.done() && net.cycle() < cap {
        for spec in engine.tick(net.cycle()) {
            events.push(TraceEvent {
                cycle: net.cycle(),
                src: spec.src.index() as u32,
                dst: spec.dst.index() as u32,
                vnet: spec.vnet,
                size_bytes: spec.size_bytes,
            });
            net.inject(spec).expect("engine produces valid packets");
        }
        net.step();
        let now = net.cycle();
        for &node in &nodes {
            for pkt in net.drain_ejected(node) {
                engine.deliver(now, node, pkt.payload);
            }
        }
    }
    Ok(RecordedRun {
        trace: Trace::new(events),
        runtime_cycles: engine.finished_at().unwrap_or(net.cycle()),
        finished: engine.done(),
    })
}

/// Result of an open-loop trace replay.
#[derive(Debug)]
pub struct ReplayResult {
    /// Cycle the last packet was delivered.
    pub drain_cycle: u64,
    /// Packets delivered (equals the trace length on success).
    pub delivered: u64,
    /// Whether every packet was delivered before the safety cap.
    pub finished: bool,
    /// Network statistics of the replay.
    pub stats: NetStats,
}

/// Replays `trace` open-loop on a fresh network built from `cfg`: each
/// packet is injected at its recorded cycle, regardless of congestion.
///
/// # Errors
///
/// Returns [`ConfigError`] if `cfg` is invalid.
///
/// # Panics
///
/// Panics if the trace references nodes outside `cfg`'s mesh.
pub fn replay(trace: &Trace, cfg: NocConfig) -> Result<ReplayResult, ConfigError> {
    let mut net: Network<u64> = Network::new(cfg)?;
    let total = trace.len() as u64;
    let mut idx = 0;
    let cap = trace.horizon() + 10_000_000;
    while (net.delivered_packets() < total || idx < trace.events.len()) && net.cycle() < cap {
        while idx < trace.events.len() && trace.events[idx].cycle <= net.cycle() {
            let e = trace.events[idx];
            net.inject(PacketSpec::new(
                NodeId::new(e.src as usize),
                NodeId::new(e.dst as usize),
                e.vnet,
                TrafficClass::Communication,
                e.size_bytes,
                idx as u64,
            ))
            .expect("trace references valid nodes/vnets");
            idx += 1;
        }
        net.step();
    }
    Ok(ReplayResult {
        drain_cycle: net.cycle(),
        delivered: net.delivered_packets(),
        finished: net.delivered_packets() == total,
        stats: net.stats().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{profile, Benchmark};

    fn small_trace() -> Trace {
        let p = profile(Benchmark::Fmm).scaled(0.003);
        let rec = record_benchmark(&p, NocConfig::dapper(), 7).unwrap();
        assert!(rec.finished);
        rec.trace
    }

    #[test]
    fn recording_captures_every_transaction_leg() {
        let p = profile(Benchmark::Cholesky).scaled(0.005);
        let rec = record_benchmark(&p, NocConfig::dapper(), 3).unwrap();
        assert!(rec.finished);
        // Each request generates a response: even count, ordered cycles.
        assert_eq!(rec.trace.len() % 2, 0);
        assert!(rec.trace.events().windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(rec.trace.horizon() <= rec.runtime_cycles);
    }

    #[test]
    fn csv_round_trips() {
        let t = small_trace();
        let mut buf = Vec::new();
        t.to_csv(&mut buf).unwrap();
        let parsed = Trace::from_csv(buf.as_slice()).unwrap();
        assert_eq!(t, parsed);
    }

    #[test]
    fn csv_rejects_malformed_records() {
        let bad = "cycle,src,dst,vnet,size_bytes\n1,2,3\n";
        let err = Trace::from_csv(bad.as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("5 comma-separated"));
        let bad = "1,2,3,x,5\n";
        assert!(Trace::from_csv(bad.as_bytes()).is_err());
        assert!(Trace::from_csv("".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn replay_delivers_every_recorded_packet() {
        let t = small_trace();
        let r = replay(&t, NocConfig::dapper()).unwrap();
        assert!(r.finished, "replay must drain");
        assert_eq!(r.delivered, t.len() as u64);
        assert!(r.drain_cycle >= t.horizon());
    }

    #[test]
    fn replay_is_config_portable_and_congestion_sensitive() {
        // The same trace replays on a different NoC; a starved NoC delivers
        // the same packets with equal or higher mean latency.
        use snacknoc_noc::TrafficClass;
        let t = small_trace();
        let full = replay(&t, NocConfig::axnoc()).unwrap();
        let starved = replay(&t, NocConfig::axnoc().with_channel_width(4)).unwrap();
        assert!(full.finished && starved.finished);
        let lat = |r: &ReplayResult| r.stats.class(TrafficClass::Communication).mean_latency();
        assert!(
            lat(&starved) > lat(&full),
            "quartered channels must raise latency: {} vs {}",
            lat(&starved),
            lat(&full)
        );
    }
}
