//! Kernel offload: run the paper's four linear-algebra kernels (SGEMM,
//! Reduction, MAC, SPMV — Table III) on a zero-load SnackNoC and compare
//! against the multicore CPU baseline model, reproducing the shape of
//! Fig. 9.
//!
//! Run with: `cargo run --release --example kernel_offload`

use snacknoc::compiler::{build, op_count, sim_size, MapperConfig};
use snacknoc::core::SnackPlatform;
use snacknoc::cpu::{CpuKernel, CpuModel};
use snacknoc::noc::NocConfig;
use snacknoc::workloads::kernels::Kernel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cpu = CpuModel::haswell();
    println!("Kernel offload: SnackNoC (16 RCUs @ 1 GHz) vs {} @ {} GHz\n", cpu.name, cpu.freq_ghz);
    for kernel in Kernel::ALL {
        let size = sim_size(kernel);
        let built = build(kernel, size, 42);

        let mut platform = SnackPlatform::new(NocConfig::default())?;
        let compiled = built.context.compile(built.root, &MapperConfig::for_mesh(platform.mesh()))?;
        let run = platform.run_kernel(&compiled, 10_000_000)?;
        let reference = built.context.interpret(built.root)?;
        assert_eq!(run.outputs, reference, "{kernel}: bit-exact check");

        let snack_s = run.cycles as f64 / 1e9;
        let ops = op_count(kernel, size);
        let ck = match kernel {
            Kernel::Sgemm => CpuKernel::Sgemm,
            Kernel::Reduction => CpuKernel::Reduction,
            Kernel::Mac => CpuKernel::Mac,
            Kernel::Spmv => CpuKernel::Spmv,
        };
        let one_core = cpu.kernel_seconds(ck, ops, 1);
        let eight_core = cpu.kernel_seconds(ck, ops, 8);
        println!(
            "{:<9} size {:>6}: {:>8} cycles on SnackNoC | {:.2}x vs 1 core, 8 cores reach {:.2}x",
            kernel.name(),
            size,
            run.cycles,
            one_core / snack_s,
            one_core / eight_core,
        );
    }
    println!("\nPaper Fig. 9: SGEMM 6.15x, Reduction 2.76x, MAC 2.57x, SPMV 2.09x vs one core.");
    Ok(())
}
