//! Multi-program execution: run the LULESH CMP benchmark on the cores
//! while SnackNoC continually executes SPMV kernels in the communication
//! layer — the paper's headline scenario (Figs. 11–12): compute "snacks"
//! on NoC slack with negligible impact on the foreground application.
//!
//! Run with: `cargo run --release --example multiprogram`

use snacknoc::compiler::{build, MapperConfig};
use snacknoc::core::SnackPlatform;
use snacknoc::noc::NocConfig;
use snacknoc::workloads::kernels::Kernel;
use snacknoc::workloads::suite::{profile, Benchmark};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = NocConfig::dapper().with_priority_arbitration(true).with_sample_window(1_000);
    let workload = profile(Benchmark::Lulesh).scaled(0.01);
    println!("LULESH on 16 cores + SPMV kernels on the NoC (priority arbitration on)\n");

    // Baseline: the application alone.
    let mut alone = SnackPlatform::new(cfg.clone())?;
    alone.attach_workload(&workload, 31);
    let base = alone.run_multiprogram(None, u64::MAX / 2);
    assert!(base.app_finished);

    // Shared: the same application (identical per-request randomness) with
    // SPMV continually resubmitted to the CPM.
    let built = build(Kernel::Spmv, 96, 31);
    let mut shared = SnackPlatform::new(cfg)?;
    let kernel = built.context.compile(built.root, &MapperConfig::for_mesh(shared.mesh()))?;
    shared.attach_workload(&workload, 31);
    let run = shared.run_multiprogram(Some(&kernel), u64::MAX / 2);
    assert!(run.app_finished);

    println!("application runtime alone : {} cycles", base.app_runtime);
    println!("application runtime shared: {} cycles", run.app_runtime);
    let impact = 100.0 * (run.app_runtime as f64 / base.app_runtime as f64 - 1.0);
    println!("runtime impact            : {impact:.2}% (paper: under 1%)");
    println!(
        "SPMV kernels completed    : {} (mean {:.0} cycles each)",
        run.kernels_completed, run.mean_kernel_cycles
    );
    println!(
        "median crossbar usage     : {:.1}% alone -> {:.1}% shared (paper: 9.3% -> 29.6%)",
        100.0 * base.stats.median_crossbar_utilization(),
        100.0 * run.stats.median_crossbar_utilization(),
    );
    println!("\nThe NoC slack computed {} free SPMV products for ~{impact:.2}% runtime cost.",
        run.kernels_completed);
    Ok(())
}
