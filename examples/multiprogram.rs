//! Multi-program execution: run the LULESH CMP benchmark on the cores
//! while SnackNoC continually executes SPMV kernels in the communication
//! layer — the paper's headline scenario (Figs. 11–12): compute "snacks"
//! on NoC slack with negligible impact on the foreground application.
//!
//! The baseline (application alone) and shared (application + kernels)
//! simulations are independent, so they run as two jobs on the
//! deterministic sweep pool (`snacknoc_bench::sweep::parallel_map`) —
//! results are identical to running them back to back.
//!
//! Run with: `cargo run --release --example multiprogram`

use snacknoc::compiler::{build, MapperConfig};
use snacknoc::core::{MultiProgramRun, SnackPlatform};
use snacknoc::noc::NocConfig;
use snacknoc::workloads::kernels::Kernel;
use snacknoc::workloads::suite::{profile, Benchmark};
use snacknoc_bench::sweep::parallel_map;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = NocConfig::dapper().with_priority_arbitration(true).with_sample_window(1_000);
    let workload = profile(Benchmark::Lulesh).scaled(0.01);
    println!("LULESH on 16 cores + SPMV kernels on the NoC (priority arbitration on)\n");

    // Job 0 — baseline: the application alone.
    // Job 1 — shared: the same application (identical per-request
    // randomness) with SPMV continually resubmitted to the CPM.
    let runs: Vec<MultiProgramRun> = parallel_map(2, 2, |job| {
        let mut p = SnackPlatform::new(cfg.clone()).expect("preset config is valid");
        p.attach_workload(&workload, 31);
        let kernel = (job == 1).then(|| {
            let built = build(Kernel::Spmv, 96, 31);
            built
                .context
                .compile(built.root, &MapperConfig::for_mesh(p.mesh()))
                .expect("SPMV compiles for the 4x4 mesh")
        });
        p.run_multiprogram_capped(kernel.as_ref())
    });
    let [base, run] = <[MultiProgramRun; 2]>::try_from(runs).expect("two jobs in, two out");
    assert!(base.app_finished);
    assert!(run.app_finished);

    println!("application runtime alone : {} cycles", base.app_runtime);
    println!("application runtime shared: {} cycles", run.app_runtime);
    let impact = 100.0 * (run.app_runtime as f64 / base.app_runtime as f64 - 1.0);
    println!("runtime impact            : {impact:.2}% (paper: under 1%)");
    println!(
        "SPMV kernels completed    : {} (mean {:.0} cycles each)",
        run.kernels_completed, run.mean_kernel_cycles
    );
    println!(
        "median crossbar usage     : {:.1}% alone -> {:.1}% shared (paper: 9.3% -> 29.6%)",
        100.0 * base.stats.median_crossbar_utilization(),
        100.0 * run.stats.median_crossbar_utilization(),
    );
    println!("\nThe NoC slack computed {} free SPMV products for ~{impact:.2}% runtime cost.",
        run.kernels_completed);
    Ok(())
}
