//! Quickstart: build the paper's running example `D = alpha*A*B + C`
//! (Fig. 8) with the context API, execute it on a simulated SnackNoC
//! platform, and check the result against the reference interpreter.
//!
//! Run with: `cargo run --release --example quickstart`

use snacknoc::compiler::{Context, MapperConfig};
use snacknoc::core::SnackPlatform;
use snacknoc::noc::NocConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4x4-mesh CMP with a SnackNoC layer: one RCU per router, the CPM at
    // a corner memory-controller node (paper Table IV).
    let mut platform = SnackPlatform::new(NocConfig::default())?;

    // Declaratively build D = alpha * (A x B) + C, exactly like the
    // paper's Listing 8b (create_input / create_mult / create_add).
    let mut cxt = Context::new("quickstart");
    let a = cxt.input(&[1.0, 2.0, 3.0, 4.0], 2, 2)?;
    let b = cxt.input(&[0.5, 1.0, 1.5, 2.0], 2, 2)?;
    let c = cxt.input(&[10.0, 10.0, 10.0, 10.0], 2, 2)?;
    let alpha = cxt.scalar(2.0);
    let ab = cxt.mul(a, b)?;
    let alpha_ab = cxt.mul(alpha, ab)?;
    let d = cxt.add(alpha_ab, c)?;

    // JIT-compile to a CPM command buffer: post-order mapping, round-robin
    // RCU scheduling, MAC-fused inner products, dependent-counted tokens.
    let kernel = cxt.compile(d, &MapperConfig::for_mesh(platform.mesh()))?;
    println!(
        "compiled {} instructions across {} RCUs ({} outputs)",
        kernel.len(),
        platform.mesh().node_count(),
        kernel.num_outputs
    );

    // Execute: the CPM streams instruction flits onto the NoC; intermediate
    // A x B elements circulate as transient data tokens on the static ring
    // until the scaling instructions consume them.
    let run = platform.run_kernel(&kernel, 100_000)?;
    println!("finished in {} cycles ({} ns at 1 GHz)", run.cycles, run.cycles);

    // Verify bit-exactly against the fixed-point reference interpreter.
    let reference = cxt.interpret(d)?;
    assert_eq!(run.outputs, reference, "simulation must match the interpreter");
    println!("D = {:?}", run.outputs.iter().map(|f| f.to_f64()).collect::<Vec<_>>());
    println!("verified bit-exact against the reference interpreter");
    Ok(())
}
