//! Multi-tenant service quickstart: three tenants with different QoS
//! classes share one CPM through the always-on service loop — an
//! interactive Guaranteed tenant, a periodic Burstable tenant and a
//! greedy BestEffort scavenger. The service admits, queues, dispatches
//! and accounts every submission; the report shows the class ranks doing
//! their job (Guaranteed latency protected, BestEffort first to queue).
//!
//! Run with: `cargo run --release --example service_tenants`

use snacknoc::service::{run_service, three_class_demo, QosClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = three_class_demo(7);
    println!("SnackNoC multi-tenant service: {} tenants, 1 CPM, DAPPER 4x4\n", spec.tenants.len());
    let report = run_service(&spec)?;

    println!(
        "{:<18} {:>10} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>7}",
        "tenant", "class", "sub", "adm", "rej", "done", "p50", "p90", "p99"
    );
    for t in &report.tenants {
        println!(
            "{:<18} {:>10} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>7}",
            t.name,
            t.class.to_string(),
            t.submitted,
            t.admitted,
            t.rejected(),
            t.completed,
            t.hist.percentile(50.0),
            t.hist.percentile(90.0),
            t.hist.percentile(99.0),
        );
    }
    println!();
    for c in report.classes() {
        println!(
            "class {:<10}  completed {:>4}  rejected {:>4}  p99 {:>7} cycles",
            c.class.to_string(),
            c.completed,
            c.rejected,
            c.hist.percentile(99.0)
        );
    }
    println!(
        "\nservice ran {} cycles; Jain fairness over service cycles: {:.3}",
        report.cycles,
        report.fairness()
    );
    assert!(report.violations.is_empty(), "conservation violated: {:?}", report.violations);
    let g = report.class_report(QosClass::Guaranteed);
    assert!(g.completed > 0, "the Guaranteed tenant must be served");
    Ok(())
}
