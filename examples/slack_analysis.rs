//! Slack analysis: measure where and how often a NoC idles under a real
//! workload — the paper's §II motivation study. Prints crossbar and link
//! utilization statistics and the input-buffer occupancy CDF for a chosen
//! benchmark, plus a per-router utilization heat map.
//!
//! Run with: `cargo run --release --example slack_analysis -- [benchmark]`
//! (default: Graph500; try FMM, LULESH, Radix, ...)

use snacknoc::noc::NocConfig;
use snacknoc::workloads::runner::run_benchmark;
use snacknoc::workloads::suite::{profile, Benchmark};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Graph500".to_string());
    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {name}, using Graph500");
            Benchmark::Graph500
        });
    println!("Slack analysis: {bench} on the DAPPER baseline (4x4 mesh)\n");
    let p = profile(bench).scaled(0.01);
    let result = run_benchmark(&p, NocConfig::dapper().with_sample_window(1_000), 17)?;
    assert!(result.finished, "benchmark must finish");

    println!("runtime: {} cycles, {} requests completed", result.runtime_cycles, result.completed_requests);
    println!();
    println!("router crossbar utilization: median {:.2}%  peak {:.2}%",
        100.0 * result.median_crossbar(), 100.0 * result.peak_crossbar());
    println!("network link utilization   : median {:.2}%  peak {:.2}%",
        100.0 * result.median_link(), 100.0 * result.stats.peak_link_utilization());
    println!("input buffers empty        : {:.2}% of router-cycles",
        100.0 * result.stats.occupancy.zero_fraction());
    println!();

    // Per-router mean crossbar utilization heat map.
    println!("per-router mean crossbar utilization (%):");
    for y in 0..4 {
        let row: Vec<String> = (0..4)
            .map(|x| {
                let r = y * 4 + x;
                format!("{:>5.1}", 100.0 * result.stats.crossbar_series(r).mean())
            })
            .collect();
        println!("  {}", row.join(" "));
    }
    println!();
    println!("Everything above the median is *slack*: SnackNoC turns those idle");
    println!("crossbar cycles, link slots and empty buffers into a compute layer.");
    Ok(())
}
