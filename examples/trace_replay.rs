//! Trace-driven methodology: record a benchmark's packet trace once, save
//! it as CSV, and replay the identical traffic on different NoC
//! configurations — the SynchroTrace/gem5 workflow the paper's evaluation
//! uses, in miniature.
//!
//! Run with: `cargo run --release --example trace_replay`

use snacknoc::noc::{NocConfig, TrafficClass};
use snacknoc::workloads::suite::{profile, Benchmark};
use snacknoc::workloads::trace::{record_benchmark, replay, Trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Record LULESH once on the DAPPER baseline.
    let workload = profile(Benchmark::Lulesh).scaled(0.004);
    let recorded = record_benchmark(&workload, NocConfig::dapper(), 11)?;
    println!(
        "recorded {} packets over {} cycles (finished: {})",
        recorded.trace.len(),
        recorded.runtime_cycles,
        recorded.finished
    );

    // 2. Round-trip through CSV, as a real trace archive would.
    let mut csv = Vec::new();
    recorded.trace.to_csv(&mut csv)?;
    println!("trace CSV: {} bytes", csv.len());
    let trace = Trace::from_csv(csv.as_slice())?;
    assert_eq!(trace, recorded.trace);

    // 3. Replay the identical traffic on each baseline NoC and a starved
    //    variant; compare delivered latency.
    println!("\nreplaying the same trace on four NoCs:");
    for (name, cfg) in [
        ("BiNoCHS", NocConfig::binochs()),
        ("AxNoC", NocConfig::axnoc()),
        ("DAPPER", NocConfig::dapper()),
        ("AxNoC CW/4", NocConfig::axnoc().with_channel_width(4)),
    ] {
        let r = replay(&trace, cfg)?;
        let comm = r.stats.class(TrafficClass::Communication);
        println!(
            "  {name:<11} drained at cycle {:>7}  mean latency {:>7.1}  p99 ~{:>5} cycles",
            r.drain_cycle,
            comm.mean_latency(),
            comm.latency_percentile(99.0),
        );
        assert!(r.finished);
    }
    println!("\nIdentical traffic, different routers: latency differences are");
    println!("purely microarchitectural — the trace-driven comparison of Fig. 1.");
    Ok(())
}
