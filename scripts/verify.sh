#!/usr/bin/env bash
# Tier-1 verification for the SnackNoC reproduction — fully offline.
#
# The workspace owns all of its randomness (crates/prng) and vendors no
# third-party crates, so everything here must succeed with zero network
# and zero registry access. Run from anywhere; operates on the repo root.
#
#   ./scripts/verify.sh          # guard + build + test + clippy
#   ./scripts/verify.sh guard    # manifest guard only (fast)

set -euo pipefail
cd "$(dirname "$0")/.."

# ---------------------------------------------------------------------------
# Guard: no registry dependencies may be (re)introduced. Every entry in any
# dependency section of any manifest must be a path dependency or a
# `workspace = true` reference to one; `[workspace.dependencies]` itself
# may contain only path deps. A bare `name = "1.2"` or a `version =` key
# inside a dependency table is a registry dep and fails the build.
# ---------------------------------------------------------------------------
guard() {
  local bad=0
  for manifest in Cargo.toml crates/*/Cargo.toml; do
    # awk: track the current [section]; inside dependency sections, flag
    # any non-blank, non-comment line that neither declares a path dep nor
    # opts into the workspace dep table.
    local offending
    offending=$(awk '
      /^\[/ {
        in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies(\.|\])/)
        next
      }
      in_deps && NF && $0 !~ /^[[:space:]]*#/ \
              && $0 !~ /path[[:space:]]*=/ \
              && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/ {
        print FILENAME ": " $0
      }
    ' "$manifest")
    if [ -n "$offending" ]; then
      echo "ERROR: non-path/non-workspace dependency in $manifest:" >&2
      echo "$offending" >&2
      bad=1
    fi
  done
  if [ "$bad" -ne 0 ]; then
    echo "The SnackNoC workspace is hermetic: only path deps and" >&2
    echo "'workspace = true' references are allowed (see README §Building)." >&2
    exit 1
  fi
  echo "manifest guard: ok (all dependencies are in-repo)"
}

guard
if [ "${1:-}" = "guard" ]; then
  exit 0
fi

echo "+ cargo build --release --offline"
cargo build --release --offline

echo "+ cargo build --release --offline --workspace --examples --benches"
cargo build --release --offline --workspace --examples --benches

echo "+ cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "+ cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

# Fault-injection smoke: a fixed micro-grid with the token-loss watchdog
# on; exits non-zero unless faults were injected AND every detected loss
# recovered (recovered == detected, outputs bit-exact).
echo "+ snack-faults --smoke"
smoke_json=$(mktemp)
trace_json=$(mktemp)
perf_json=$(mktemp)
chaos_json=$(mktemp)
service_json=$(mktemp)
trap 'rm -f "$smoke_json" "$trace_json" "$perf_json" "$chaos_json" "$service_json"' EXIT
cargo run --release --offline -q -p snacknoc-bench --bin snack-faults -- \
  --smoke --json "$smoke_json"

# Chaos smoke: randomized permanent+transient fault schedules, every cell
# run in all five stepping modes; the binary exits non-zero unless every
# invariant holds (termination with a typed verdict, bit-exact outputs,
# transient recovery, consistent degradation reports, five-mode
# bit-identity) AND at least one cell completed through an actual
# remap/failover. The greps re-assert the JSON schema from the shell so a
# silently-broken self-check cannot pass CI.
echo "+ snack-chaos --smoke"
cargo run --release --offline -q -p snacknoc-bench --bin snack-chaos -- \
  --smoke --json "$chaos_json"
grep -q '"invariants_hold": true' "$chaos_json" || {
  echo "ERROR: snack-chaos JSON reports an invariant violation" >&2
  exit 1
}
grep -q '"modes_agree": true' "$chaos_json" || {
  echo "ERROR: snack-chaos JSON has no five-mode agreement rows" >&2
  exit 1
}
if grep -q '"modes_agree": false' "$chaos_json"; then
  echo "ERROR: a chaos cell diverged across stepping modes" >&2
  exit 1
fi
awk -v RS='}' '
  /"degraded_completions":/ {
    match($0, /"degraded_completions": [0-9]+/)
    split(substr($0, RSTART, RLENGTH), kv, ": ")
    if (kv[2] + 0 < 1) {
      print "ERROR: chaos smoke never exercised remap/failover" > "/dev/stderr"
      exit 1
    }
    found = 1
  }
  END { if (!found) { print "ERROR: no degraded_completions field in chaos JSON" > "/dev/stderr"; exit 1 } }' \
  "$chaos_json"

# Tracing smoke: run a kernel under the RingTracer and demand (a) the
# emitted Chrome trace JSON parses, (b) at least one event per component
# class (router / rcu / cpm), and (c) the critical-path attribution sums
# exactly to the kernel latency. All three checks live inside the binary
# and --smoke makes them fatal; the greps below re-assert (a)+(b) from
# the shell so a silently-broken self-check cannot pass CI.
echo "+ snack-trace --smoke"
trace_out=$(cargo run --release --offline -q -p snacknoc-bench --bin snack-trace -- \
  --smoke --json "$trace_json")
echo "$trace_out"
echo "$trace_out" | grep -q "^validated: " || {
  echo "ERROR: snack-trace --smoke did not validate its own trace" >&2
  exit 1
}
for lane in router rcu cpm; do
  grep -q "\"name\":\"$lane\"" "$trace_json" || {
    echo "ERROR: trace JSON is missing the $lane lane" >&2
    exit 1
  }
done

# Stepping-mode hot-loop smoke: time Network::step + a closed-loop
# platform scenario + a kernel under the dense reference loop, the
# active-set scheduler and the event-driven time-wheel, and demand the
# stats fingerprints are bit-identical across all three (the binary exits
# non-zero on any mismatch; the greps re-assert the identity line and the
# JSON schema from the shell so a silently-broken self-check cannot pass
# CI). The event rows must exist, and on the idle mesh the event-driven
# mode must beat the dense baseline — that ordering is structural (the
# wheel jumps dead cycles the dense loop must walk), so even a loaded CI
# machine keeps it true.
echo "+ snack-perf --smoke"
perf_out=$(cargo run --release --offline -q -p snacknoc-bench --bin snack-perf -- \
  --smoke --json "$perf_json")
echo "$perf_out"
echo "$perf_out" | grep -q "^stats-identical: yes" || {
  echo "ERROR: snack-perf --smoke did not prove event == active == dense stats" >&2
  exit 1
}
grep -q '"schema": "snacknoc-perf-v2"' "$perf_json" || {
  echo "ERROR: snack-perf JSON is missing the snacknoc-perf-v2 schema tag" >&2
  exit 1
}
grep -q '"stats_identical": true' "$perf_json" || {
  echo "ERROR: snack-perf JSON reports a stats mismatch" >&2
  exit 1
}
grep -q '"event_median_ns"' "$perf_json" || {
  echo "ERROR: snack-perf JSON is missing the event-driven timing rows" >&2
  exit 1
}
# v2 loaded-path fields (DESIGN.md §16): every step row must carry the
# injected-flit count and the flits/sec throughput figure.
for field in '"injected_flits":' '"flits_per_sec":'; do
  grep -q "$field" "$perf_json" || {
    echo "ERROR: snack-perf JSON is missing the v2 field $field" >&2
    exit 1
  }
done
awk -v RS='}' '/"name": "idle/ {
  match($0, /"event_speedup": [0-9.]+/)
  split(substr($0, RSTART, RLENGTH), kv, ": ")
  if (kv[2] + 0 <= 1.0) {
    print "ERROR: idle event_speedup " kv[2] " is not above the dense baseline" > "/dev/stderr"
    exit 1
  }
  found = 1
}
END { if (!found) { print "ERROR: no idle row in snack-perf JSON" > "/dev/stderr"; exit 1 } }' \
  "$perf_json"

# Sharded-stepping rows (DESIGN.md §13): the smoke JSON must carry shard
# rows with the full schema, and every row's fingerprint check must have
# passed (byte-identical to the serial baseline at every worker count) —
# that identity is machine-independent, so it is gated unconditionally.
for field in '"shard": \[' '"workers":' '"serial_median_ns":' '"shard_speedup":'; do
  grep -q "$field" "$perf_json" || {
    echo "ERROR: snack-perf JSON is missing the shard field $field" >&2
    exit 1
  }
done
awk -v RS='}' '/"workers":/ {
  rows++
  if ($0 !~ /"stats_identical": true/) {
    print "ERROR: a shard row is not bit-identical to serial stepping" > "/dev/stderr"
    exit 1
  }
}
END { if (!rows) { print "ERROR: no shard rows in snack-perf JSON" > "/dev/stderr"; exit 1 } }' \
  "$perf_json"

# The committed full capture must show the sharded stepper winning on the
# saturated 64x64 mesh — but parallel speedup is a property of the
# capture host, not of the code, so the gate only binds when that capture
# was taken with spare hardware threads (host_threads >= 2). A
# single-core CI box can regenerate BENCH_perf.json without tripping it.
if [ -f BENCH_perf.json ] && grep -q '"shard":' BENCH_perf.json; then
  awk -v RS='}' '
    /"host_threads":/ {
      match($0, /"host_threads": [0-9]+/)
      split(substr($0, RSTART, RLENGTH), kv, ": ")
      threads = kv[2] + 0
    }
    /"name": "shard\/64x64"/ {
      match($0, /"shard_speedup": [0-9.]+/)
      split(substr($0, RSTART, RLENGTH), kv, ": ")
      if (kv[2] + 0 > best) best = kv[2] + 0
      found = 1
    }
    END {
      if (!found) { print "ERROR: no 64x64 shard row in BENCH_perf.json" > "/dev/stderr"; exit 1 }
      if (threads >= 2 && best <= 1.0) {
        print "ERROR: 64x64 shard speedup " best " did not beat serial stepping on a " \
              threads "-thread capture host" > "/dev/stderr"
        exit 1
      }
      printf "shard gate: 64x64 best speedup %.3fx (capture host: %d thread(s))\n", best, threads
    }' BENCH_perf.json
fi

# Loaded-path gates on the committed full capture (DESIGN.md §16): the
# v2 schema, a saturation/32x32 scaling row, stats_identical on *every*
# row (step, shard and kernel alike — a single false bit means a
# stepping mode diverged from the dense oracle), and the saturation
# 16x16 active median beating the committed pre-PR capture
# (EXPERIMENTS.md "Simulator performance": 1 561 807 930 ns on the same
# container class; the PR-10 data-layout work targets >= 1.5x, the gate
# keeps margin for slower hosts).
if [ -f BENCH_perf.json ]; then
  grep -q '"schema": "snacknoc-perf-v2"' BENCH_perf.json || {
    echo "ERROR: committed BENCH_perf.json is not a snacknoc-perf-v2 capture" >&2
    exit 1
  }
  grep -q '"name": "saturation/32x32"' BENCH_perf.json || {
    echo "ERROR: committed BENCH_perf.json is missing the saturation/32x32 row" >&2
    exit 1
  }
  if grep -q '"stats_identical": false' BENCH_perf.json; then
    echo "ERROR: a committed BENCH_perf.json row is not bit-identical across modes" >&2
    exit 1
  fi
  awk -v RS='}' -v pre_pr_ns=1561807930 '/"name": "saturation\/16x16"/ {
    match($0, /"active_median_ns": [0-9]+/)
    split(substr($0, RSTART, RLENGTH), kv, ": ")
    speedup = pre_pr_ns / (kv[2] + 0)
    if (speedup < 1.2) {
      print "ERROR: saturation/16x16 active median " kv[2] " ns is only " \
            speedup "x over the pre-PR baseline (need >= 1.2x)" > "/dev/stderr"
      exit 1
    }
    printf "loaded-path gate: saturation/16x16 %.2fx over pre-PR baseline\n", speedup
    found = 1
  }
  END { if (!found) { print "ERROR: no saturation/16x16 row in BENCH_perf.json" > "/dev/stderr"; exit 1 } }' \
    BENCH_perf.json
fi

# Service smoke (DESIGN.md §15): the multi-tenant SLO sweep at three
# load levels, every level in all five stepping modes; the binary exits
# non-zero unless every level is violation-free and five-mode
# bit-identical, Guaranteed p99 < BestEffort p99 at peak, and the peak
# level tripped admission control. The greps re-assert the JSON schema
# from the shell so a silently-broken self-check cannot pass CI.
echo "+ snack-service --smoke"
cargo run --release --offline -q -p snacknoc-bench --bin snack-service -- \
  --smoke --json "$service_json"
grep -q '"schema": "snacknoc-service-v1"' "$service_json" || {
  echo "ERROR: snack-service JSON is missing the snacknoc-service-v1 schema tag" >&2
  exit 1
}
for field in '"p50":' '"p90":' '"p99":' '"fairness":' '"classes":' '"tenants":'; do
  grep -q "$field" "$service_json" || {
    echo "ERROR: snack-service JSON is missing the field $field" >&2
    exit 1
  }
done
grep -q '"invariants_hold": true' "$service_json" || {
  echo "ERROR: snack-service JSON reports an invariant violation" >&2
  exit 1
}
grep -q '"qos_protected": true' "$service_json" || {
  echo "ERROR: snack-service JSON says Guaranteed p99 was not protected at peak" >&2
  exit 1
}
if grep -q '"modes_identical": false' "$service_json"; then
  echo "ERROR: a snack-service load level diverged across stepping modes" >&2
  exit 1
fi
grep -q '"modes_identical": true' "$service_json" || {
  echo "ERROR: snack-service JSON has no five-mode identity rows" >&2
  exit 1
}
# Peak rejections must be nonzero and every fairness index in [0, 1].
awk '
  /"rejections_at_peak":/ {
    match($0, /"rejections_at_peak": [0-9]+/)
    split(substr($0, RSTART, RLENGTH), kv, ": ")
    if (kv[2] + 0 == 0) {
      print "ERROR: peak load never tripped admission control" > "/dev/stderr"
      exit 1
    }
    peak = 1
  }
  /"fairness":/ {
    match($0, /"fairness": [0-9.]+/)
    split(substr($0, RSTART, RLENGTH), kv, ": ")
    if (kv[2] + 0 < 0 || kv[2] + 0 > 1) {
      print "ERROR: Jain fairness " kv[2] " is outside [0, 1]" > "/dev/stderr"
      exit 1
    }
    fair++
  }
  END {
    if (!peak) { print "ERROR: no rejections_at_peak in snack-service JSON" > "/dev/stderr"; exit 1 }
    if (!fair) { print "ERROR: no fairness fields in snack-service JSON" > "/dev/stderr"; exit 1 }
  }' "$service_json"

echo "verify: all green"
