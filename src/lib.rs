//! # snacknoc
//!
//! Facade crate for the SnackNoC (HPCA 2020) reproduction: re-exports every
//! workspace crate under one roof so examples and downstream users can
//! depend on a single crate.
//!
//! * [`noc`] — the cycle-level virtual-channel mesh NoC simulator.
//! * [`workloads`] — synthetic CMP benchmark traffic models.
//! * [`core`] — the SnackNoC platform (CPM, RCUs, tokens, transient ring).
//! * [`compiler`] — the programming model and JIT kernel compiler.
//! * [`cpu`] — the multicore CPU baseline performance model.
//! * [`cost`] — the 45 nm area/power cost model.
//! * [`prng`] — in-repo deterministic randomness (stream RNG, common
//!   random numbers, property-test harness); the repo vendors no
//!   third-party crates.
//! * [`trace`] — cycle-level structured event tracing: bounded ring
//!   tracers, Chrome trace-event export and critical-path analysis.
//! * [`service`] — the multi-tenant kernel service: QoS-classed
//!   submission queues, admission control and SLO accounting on top of
//!   the platform.
//!
//! See the repository README for a tour and `examples/` for runnable demos.

#![forbid(unsafe_code)]

pub use snacknoc_compiler as compiler;
pub use snacknoc_core as core;
pub use snacknoc_cost as cost;
pub use snacknoc_cpu as cpu;
pub use snacknoc_noc as noc;
pub use snacknoc_prng as prng;
pub use snacknoc_service as service;
pub use snacknoc_trace as trace;
pub use snacknoc_workloads as workloads;
