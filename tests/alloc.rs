//! Counting-allocator proof that the activity-driven hot loop is
//! **allocation-free in steady state**: once scratch buffers and queue
//! capacities are warm, 1 000 consecutive `Network::step` cycles with
//! traffic in flight (and no tracer) perform zero heap allocations.
//!
//! The whole file is one integration-test crate so the `#[global_allocator]`
//! hook owns the process: every heap allocation anywhere in the test binary
//! passes through [`CountingAlloc`]. The counter is only *read* around the
//! measured regions, so unrelated test-harness allocations before/after a
//! region don't pollute the measurement. Because the counter is process
//! global, every measuring test holds [`MEASURE_LOCK`] for its whole body:
//! the harness may run tests on parallel threads, and another test's
//! warm-up allocations must not land inside a measured region.

use snacknoc_noc::{Network, NocConfig, NodeId, PacketSpec, TrafficClass};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Serializes the measuring tests (see the module docs).
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// System allocator wrapper that counts every `alloc`/`realloc` call.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the only addition is a relaxed
// atomic increment, which cannot violate the GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Closed-loop traffic: every delivered packet is immediately re-injected
/// back toward where it came from, so a fixed population of packets stays
/// in flight forever and the same code paths (NI injection, router
/// pipeline, link traversal, ejection, reassembly) run every cycle.
fn bounce(
    net: &mut Network<u64>,
    scratch: &mut Vec<snacknoc_noc::Packet<u64>>,
    nodes: &[NodeId],
    size_bytes: u32,
) {
    for &node in nodes {
        net.drain_ejected_into(node, scratch);
    }
    for pkt in scratch.drain(..) {
        let spec = PacketSpec::new(
            pkt.dst,
            pkt.src,
            pkt.vnet,
            TrafficClass::Communication,
            size_bytes,
            pkt.payload,
        );
        net.inject(spec).expect("bounce packets stay valid");
    }
}

#[test]
fn steady_state_network_step_allocates_nothing() {
    let _guard = MEASURE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    // A sampling window far beyond the run length: the only allocating
    // stats path (the per-window series roll) must not fire mid-measure.
    let cfg = NocConfig::default().with_mesh(8, 8).with_sample_window(1_000_000);
    let mut net: Network<u64> = Network::new(cfg).expect("valid config");
    let nodes: Vec<NodeId> = net.mesh().nodes().collect();
    let mut scratch: Vec<snacknoc_noc::Packet<u64>> = Vec::with_capacity(256);

    // Seed a fixed population of packets criss-crossing the mesh.
    let n = nodes.len();
    for i in 0..48usize {
        let src = nodes[(i * 7) % n];
        let dst = nodes[(i * 13 + 5) % n];
        if src == dst {
            continue;
        }
        let spec =
            PacketSpec::new(src, dst, (i % 2) as u8, TrafficClass::Communication, 8, i as u64);
        net.inject(spec).expect("seed packets valid");
    }

    // Warm-up: let every scratch vector, queue, and hash map reach its
    // steady-state capacity (several round trips across the 8x8 mesh).
    for _ in 0..4_000 {
        net.step();
        bounce(&mut net, &mut scratch, &nodes, 8);
    }
    assert!(net.pending_packets() > 0, "warm-up kept traffic in flight");
    let delivered_before = net.delivered_packets();

    // Measured region: 1k steady-state cycles, traffic in flight, no
    // tracer. Zero heap allocations allowed.
    let allocs_before = ALLOC_CALLS.load(Ordering::SeqCst);
    for _ in 0..1_000 {
        net.step();
        bounce(&mut net, &mut scratch, &nodes, 8);
    }
    let allocs_after = ALLOC_CALLS.load(Ordering::SeqCst);

    assert!(
        net.delivered_packets() > delivered_before,
        "measured region must exercise the full deliver/re-inject loop"
    );
    assert!(net.pending_packets() > 0, "traffic still in flight after measurement");
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "steady-state Network::step must be allocation-free \
         ({} allocations in 1k cycles)",
        allocs_after - allocs_before
    );
}

/// The *loaded* counterpart (ISSUE PR 10): a saturation-level closed-loop
/// population of multi-flit packets — router buffers contended, NI
/// backlogs nonzero, reassembly and the payload pool churning every cycle
/// — still performs zero heap allocations once the pools are warm. The
/// payload slab is preallocated for the whole population up front, so its
/// demand-growth counter must stay at zero for the entire run, not just
/// the measured region.
#[test]
fn saturated_steady_state_allocates_nothing() {
    let _guard = MEASURE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let cfg = NocConfig::default().with_mesh(8, 8).with_sample_window(1_000_000);
    let mut net: Network<u64> = Network::new(cfg).expect("valid config");
    let nodes: Vec<NodeId> = net.mesh().nodes().collect();
    let mut scratch: Vec<snacknoc_noc::Packet<u64>> = Vec::with_capacity(512);

    // Enough multi-flit packets to keep the 8x8 mesh saturated: far more
    // flits in flight than the routers can buffer, so the surplus queues
    // at the NIs and every pipeline stage contends every cycle.
    const POPULATION: usize = 320;
    const SIZE_BYTES: u32 = 64;
    net.preallocate_payloads(POPULATION);
    let n = nodes.len();
    for i in 0..POPULATION {
        let src = nodes[(i * 11) % n];
        let dst = nodes[(i * 17 + 3) % n];
        if src == dst {
            continue;
        }
        let spec = PacketSpec::new(
            src,
            dst,
            (i % 2) as u8,
            TrafficClass::Communication,
            SIZE_BYTES,
            i as u64,
        );
        net.inject(spec).expect("seed packets valid");
    }

    for _ in 0..6_000 {
        net.step();
        bounce(&mut net, &mut scratch, &nodes, SIZE_BYTES);
    }
    assert!(net.pending_packets() > 0, "warm-up kept traffic in flight");
    assert!(net.total_ni_backlog() > 0, "population saturates the mesh");
    assert!(net.payload_pool_live() > 0, "in-flight payloads live in the pool");
    assert_eq!(
        net.payload_pool_growth_events(),
        0,
        "preallocation covered the closed-loop population"
    );
    let delivered_before = net.delivered_packets();

    let allocs_before = ALLOC_CALLS.load(Ordering::SeqCst);
    for _ in 0..1_000 {
        net.step();
        bounce(&mut net, &mut scratch, &nodes, SIZE_BYTES);
    }
    let allocs_after = ALLOC_CALLS.load(Ordering::SeqCst);

    assert!(
        net.delivered_packets() > delivered_before,
        "measured region must exercise the full deliver/re-inject loop"
    );
    assert!(net.pending_packets() > 0, "traffic still in flight after measurement");
    assert_eq!(net.payload_pool_growth_events(), 0, "pool never grew on demand");
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "loaded steady-state Network::step must be allocation-free \
         ({} allocations in 1k cycles)",
        allocs_after - allocs_before
    );
}
