//! Counting-allocator proof that the activity-driven hot loop is
//! **allocation-free in steady state**: once scratch buffers and queue
//! capacities are warm, 1 000 consecutive `Network::step` cycles with
//! traffic in flight (and no tracer) perform zero heap allocations.
//!
//! The whole file is one integration-test crate so the `#[global_allocator]`
//! hook owns the process: every heap allocation anywhere in the test binary
//! passes through [`CountingAlloc`]. The counter is only *read* around the
//! measured region, so unrelated test-harness allocations before/after the
//! region don't pollute the measurement (tests in this file must therefore
//! not run concurrently with the measured region — there is exactly one
//! measuring test).

use snacknoc_noc::{Network, NocConfig, NodeId, PacketSpec, TrafficClass};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts every `alloc`/`realloc` call.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the only addition is a relaxed
// atomic increment, which cannot violate the GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Closed-loop traffic: every delivered packet is immediately re-injected
/// back toward where it came from, so a fixed population of packets stays
/// in flight forever and the same code paths (NI injection, router
/// pipeline, link traversal, ejection, reassembly) run every cycle.
fn bounce(net: &mut Network<u64>, scratch: &mut Vec<snacknoc_noc::Packet<u64>>, nodes: &[NodeId]) {
    for &node in nodes {
        net.drain_ejected_into(node, scratch);
    }
    for pkt in scratch.drain(..) {
        let spec = PacketSpec::new(
            pkt.dst,
            pkt.src,
            pkt.vnet,
            TrafficClass::Communication,
            8,
            pkt.payload,
        );
        net.inject(spec).expect("bounce packets stay valid");
    }
}

#[test]
fn steady_state_network_step_allocates_nothing() {
    // A sampling window far beyond the run length: the only allocating
    // stats path (the per-window series roll) must not fire mid-measure.
    let cfg = NocConfig::default().with_mesh(8, 8).with_sample_window(1_000_000);
    let mut net: Network<u64> = Network::new(cfg).expect("valid config");
    let nodes: Vec<NodeId> = net.mesh().nodes().collect();
    let mut scratch: Vec<snacknoc_noc::Packet<u64>> = Vec::with_capacity(256);

    // Seed a fixed population of packets criss-crossing the mesh.
    let n = nodes.len();
    for i in 0..48usize {
        let src = nodes[(i * 7) % n];
        let dst = nodes[(i * 13 + 5) % n];
        if src == dst {
            continue;
        }
        let spec =
            PacketSpec::new(src, dst, (i % 2) as u8, TrafficClass::Communication, 8, i as u64);
        net.inject(spec).expect("seed packets valid");
    }

    // Warm-up: let every scratch vector, queue, and hash map reach its
    // steady-state capacity (several round trips across the 8x8 mesh).
    for _ in 0..4_000 {
        net.step();
        bounce(&mut net, &mut scratch, &nodes);
    }
    assert!(net.pending_packets() > 0, "warm-up kept traffic in flight");
    let delivered_before = net.delivered_packets();

    // Measured region: 1k steady-state cycles, traffic in flight, no
    // tracer. Zero heap allocations allowed.
    let allocs_before = ALLOC_CALLS.load(Ordering::SeqCst);
    for _ in 0..1_000 {
        net.step();
        bounce(&mut net, &mut scratch, &nodes);
    }
    let allocs_after = ALLOC_CALLS.load(Ordering::SeqCst);

    assert!(
        net.delivered_packets() > delivered_before,
        "measured region must exercise the full deliver/re-inject loop"
    );
    assert!(net.pending_packets() > 0, "traffic still in flight after measurement");
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "steady-state Network::step must be allocation-free \
         ({} allocations in 1k cycles)",
        allocs_after - allocs_before
    );
}
