//! Whole-stack determinism: identical seeds must reproduce identical
//! simulations bit-for-bit, across every subsystem at once. This guards
//! the common-random-numbers machinery the experiments rely on (any
//! accidental dependence on iteration order or ambient randomness breaks
//! the paper comparisons silently).

use snacknoc::compiler::{build, MapperConfig};
use snacknoc::core::SnackPlatform;
use snacknoc::noc::{NocConfig, NocPreset, TrafficClass};
use snacknoc::workloads::kernels::Kernel;
use snacknoc::workloads::suite::{profile, Benchmark};
use snacknoc_bench::faults::{run_fault_sweep, FaultScenario, FaultSweepSpec};
use snacknoc_bench::sweep::{run_sweep, SweepSpec};

/// Applies stepping mode `0` (dense reference loop, DESIGN.md §11),
/// `1` (activity-driven scheduling, the default), `2` (event-driven
/// time-wheel jumps, DESIGN.md §12), `3` (sharded worker threads,
/// DESIGN.md §13, two shards) or `4` (event + sharded) to a platform.
fn apply_mode(p: &mut SnackPlatform, mode: u8) {
    match mode {
        0 => p.set_dense_stepping(true),
        1 => {}
        2 => p.set_event_stepping(true),
        3 => p.set_sharding(2).expect("two shards fit the mesh"),
        4 => {
            p.set_event_stepping(true);
            p.set_sharding(2).expect("two shards fit the mesh");
        }
        _ => unreachable!("modes are 0..=4"),
    }
}

/// A fingerprint of a multi-program run produced under an arbitrary
/// platform setup. All stepping modes must be bit-identical.
fn fingerprint_with(seed: u64, setup: impl FnOnce(&mut SnackPlatform)) -> (u64, u64, f64, u64, u64) {
    let mut p = SnackPlatform::new(
        NocConfig::dapper().with_priority_arbitration(true).with_sample_window(500),
    )
    .expect("valid platform");
    setup(&mut p);
    let built = build(Kernel::Spmv, 48, seed);
    let kernel = built
        .context
        .compile(built.root, &MapperConfig::for_mesh(p.mesh()))
        .expect("compiles");
    p.attach_workload(&profile(Benchmark::Graph500).scaled(0.0008), seed);
    let run = p.run_multiprogram_capped(Some(&kernel));
    assert!(run.app_finished);
    let comm = run.stats.class(TrafficClass::Communication);
    (
        run.app_runtime,
        run.kernels_completed,
        run.stats.median_crossbar_utilization(),
        comm.latency_sum,
        p.rcu_stats().executed,
    )
}

/// A fingerprint of a multi-program run that any nondeterminism would
/// perturb. `mode` selects the stepping mode (see [`apply_mode`]); all
/// modes must be bit-identical.
fn fingerprint_stepping(seed: u64, mode: u8) -> (u64, u64, f64, u64, u64) {
    fingerprint_with(seed, |p| apply_mode(p, mode))
}

/// Default-mode fingerprint (activity-driven stepping).
fn fingerprint(seed: u64) -> (u64, u64, f64, u64, u64) {
    fingerprint_stepping(seed, 1)
}

#[test]
fn multiprogram_runs_are_bit_reproducible() {
    let a = fingerprint(41);
    let b = fingerprint(41);
    assert_eq!(a, b, "same seed, same universe");
    let c = fingerprint(42);
    assert_ne!(a, c, "different seeds diverge");
}

/// The parallel sweep pool is a pure wall-clock optimization: the merged
/// simulation report is byte-identical whether one worker runs every cell
/// or four workers race for them (and whether a cell is repeated for
/// wall-clock sampling).
#[test]
fn sweep_reports_are_thread_count_invariant() {
    let cells = SweepSpec::grid(
        &[Benchmark::Fmm, Benchmark::WaterSpatial],
        &[NocPreset::Dapper, NocPreset::BiNoChs],
        &[11, 12],
        0.003,
    )
    .with_kernels(&[Kernel::Reduction, Kernel::Mac], 24, &[NocPreset::AxNoc], &[11])
    .cells;
    let serial = run_sweep(
        &SweepSpec { cells: cells.clone(), threads: 1, samples: 1 },
    );
    let parallel = run_sweep(
        &SweepSpec { cells: cells.clone(), threads: 4, samples: 2 },
    );
    assert_eq!(
        serial.deterministic_json(),
        parallel.deterministic_json(),
        "threads=1 and threads=4 must merge to identical bytes"
    );
    assert_eq!(serial.cells.len(), cells.len());
    assert!(serial.cells.iter().all(|c| c.finished), "every cell completes");
    // Pool accounting is consistent even though per-worker splits vary.
    assert_eq!(
        parallel.pool.cells_per_worker.iter().sum::<u64>(),
        cells.len() as u64
    );
}

/// The fault-injection sweep is deterministic under the same worker pool:
/// fault plans are seeded per cell, so the injected drop/corrupt schedule —
/// and every downstream detection/recovery counter — must be byte-identical
/// whether one worker runs the grid or four workers race for it.
#[test]
fn fault_sweep_reports_are_thread_count_invariant() {
    let spec = FaultSweepSpec::grid(
        &[Kernel::Mac, Kernel::Reduction],
        8,
        &[
            FaultScenario::Clean,
            FaultScenario::Drop { rate: 0.05 },
            FaultScenario::Corrupt { rate: 0.05 },
        ],
        &[1, 2],
    );
    let serial = run_fault_sweep(&spec.clone().with_threads(1));
    let parallel = run_fault_sweep(&spec.with_threads(4));
    assert_eq!(
        serial.deterministic_json(),
        parallel.deterministic_json(),
        "threads=1 and threads=4 fault sweeps must merge to identical bytes"
    );
    assert!(serial.all_consistent(), "every cell verified, recovered == detected");
    assert!(
        serial.cells.iter().any(|c| c.detected > 0),
        "the faulty scenarios actually exercised recovery"
    );
}

#[test]
fn kernel_results_do_not_depend_on_interference() {
    // QoS may change *when* a kernel finishes, never *what* it computes.
    let built = build(Kernel::Sgemm, 16, 7);
    let reference = built.context.interpret(built.root).expect("interpretable");
    for (arb, attach) in [(false, false), (true, false), (false, true), (true, true)] {
        let mut p = SnackPlatform::new(NocConfig::dapper().with_priority_arbitration(arb))
            .expect("valid platform");
        let kernel = built
            .context
            .compile(built.root, &MapperConfig::for_mesh(p.mesh()))
            .expect("compiles");
        if attach {
            p.attach_workload(&profile(Benchmark::Radix).scaled(0.0005), 3);
            p.run(1_000);
        }
        let run = p.run_kernel(&kernel, 10_000_000).expect("finishes");
        assert_eq!(run.outputs, reference, "arb={arb} attach={attach}");
    }
}

/// Tracing determinism, part 1: the default `NopTracer` is exactly free.
/// A run with an explicitly installed `Nop` handle must be bit-identical
/// to the untraced fingerprint above — same cycles, same stats, same
/// medians.
#[test]
fn nop_traced_multiprogram_is_bit_identical_to_untraced() {
    use snacknoc::trace::TracerHandle;
    let untraced = fingerprint(41);
    let traced = {
        let mut p = SnackPlatform::new(
            NocConfig::dapper().with_priority_arbitration(true).with_sample_window(500),
        )
        .expect("valid platform");
        p.set_tracer(TracerHandle::Nop);
        let built = build(Kernel::Spmv, 48, 41);
        let kernel = built
            .context
            .compile(built.root, &MapperConfig::for_mesh(p.mesh()))
            .expect("compiles");
        p.attach_workload(&profile(Benchmark::Graph500).scaled(0.0008), 41);
        let run = p.run_multiprogram_capped(Some(&kernel));
        assert!(run.app_finished);
        let comm = run.stats.class(TrafficClass::Communication);
        (
            run.app_runtime,
            run.kernels_completed,
            run.stats.median_crossbar_utilization(),
            comm.latency_sum,
            p.rcu_stats().executed,
        )
    };
    assert_eq!(untraced, traced, "a Nop tracer must not perturb a single cycle");
}

/// Tracing determinism, part 2: a `RingTracer` observes without
/// perturbing, and the exported event stream is byte-identical across
/// reruns of the same seed and across 1-vs-4 worker pools running the
/// same traced jobs.
#[test]
fn ring_trace_exports_are_byte_identical_across_reruns_and_workers() {
    use snacknoc_bench::sweep::parallel_map;
    use snacknoc_bench::tracing::run_traced_kernel;

    let traced_json = |kernel: Kernel, seed: u64| {
        let run = run_traced_kernel(kernel, 10, NocConfig::default(), seed, 1 << 16);
        assert!(run.verified, "{kernel} traced run verifies");
        run.chrome_json()
    };

    // Rerun of the same seed: identical bytes.
    assert_eq!(
        traced_json(Kernel::Spmv, 5),
        traced_json(Kernel::Spmv, 5),
        "same seed, same event stream"
    );

    // 1-vs-4 workers over a small traced-job grid: the merged artifact
    // list is byte-identical (each job owns its tracer, so worker count
    // is a pure wall-clock knob).
    let grid: Vec<(Kernel, u64)> = Kernel::ALL
        .into_iter()
        .flat_map(|k| [(k, 3u64), (k, 4u64)])
        .collect();
    let serial = parallel_map(grid.len(), 1, |i| traced_json(grid[i].0, grid[i].1));
    let parallel = parallel_map(grid.len(), 4, |i| traced_json(grid[i].0, grid[i].1));
    assert_eq!(serial, parallel, "1-vs-4 workers must produce identical traces");
}

/// Tracing determinism, part 3: observing a kernel with a `RingTracer`
/// leaves its timing and outputs identical to the untraced run (the
/// tracer is a pure observer, not a participant).
#[test]
fn ring_traced_kernel_matches_untraced_kernel() {
    use snacknoc_bench::experiments::run_snack_kernel;
    use snacknoc_bench::tracing::run_traced_kernel;
    for kernel in Kernel::ALL {
        let plain = run_snack_kernel(kernel, 10, NocConfig::default(), 7);
        let traced = run_traced_kernel(kernel, 10, NocConfig::default(), 7, 1 << 16);
        assert_eq!(plain.cycles, traced.cycles, "{kernel}: timing unchanged");
        assert_eq!(plain.verified, traced.verified);
        let cp = traced.critical_path.expect("bracket captured");
        assert_eq!(cp.attributed_total(), cp.total(), "{kernel}: tiling exact");
        assert_eq!(cp.total(), traced.cycles, "{kernel}: bracket spans latency");
    }
}

/// Active-set scheduling, part 1: the activity-driven hot loop (the
/// default) is a pure wall-clock optimization. A full multi-program run —
/// kernel + background workload + priority arbitration — produces a
/// bit-identical fingerprint under `dense_stepping`, which visits every
/// router, NI and RCU each cycle (DESIGN.md §11).
#[test]
fn active_set_multiprogram_is_bit_identical_to_dense() {
    for seed in [41, 42, 1009] {
        let dense = fingerprint_stepping(seed, 0);
        let active = fingerprint_stepping(seed, 1);
        let event = fingerprint_stepping(seed, 2);
        assert_eq!(
            active, dense,
            "seed {seed}: active-set stepping must match dense stepping bit-for-bit"
        );
        assert_eq!(
            event, dense,
            "seed {seed}: event-driven stepping must match dense stepping bit-for-bit"
        );
        assert_eq!(
            fingerprint_stepping(seed, 3),
            dense,
            "seed {seed}: sharded stepping must match dense stepping bit-for-bit"
        );
        assert_eq!(
            fingerprint_stepping(seed, 4),
            dense,
            "seed {seed}: event+sharded stepping must match dense stepping bit-for-bit"
        );
    }
}

/// Active-set scheduling, part 1b: the sharded worker-thread stepper
/// (DESIGN.md §13) is bit-identical to dense at *every* legal shard
/// count, not just the two-shard split the matrix above uses — worker
/// count is a pure wall-clock knob, exactly like the sweep pool's.
#[test]
fn sharded_multiprogram_is_shard_count_invariant() {
    let dense = fingerprint_stepping(41, 0);
    for shards in [1, 2, 4] {
        let sharded =
            fingerprint_with(41, |p| p.set_sharding(shards).expect("shards fit the mesh"));
        assert_eq!(
            sharded, dense,
            "{shards}-shard multiprogram run must match dense bit-for-bit"
        );
    }
}

/// Active-set scheduling, part 2: bit-identity holds *under a fault plan*
/// — link faults perturb the wakeup edges (drops synthesize credits,
/// downed links park flits) and RCU stall windows force the platform's
/// dense-RCU fallback, so this pins exactly the hairiest scheduling
/// corners. Outputs, cycle count, RCU counters, recovery counters and the
/// full network-stats fingerprint must all match.
#[test]
fn active_set_matches_dense_under_fault_plan() {
    use snacknoc::core::RecoveryConfig;
    use snacknoc::noc::{Dir, FaultPlan, LinkFaultKind, NodeId};
    use snacknoc_bench::perf::stats_fingerprint;

    let built = build(Kernel::Reduction, 48, 9);
    let run_mode = |mode: u8| {
        let mut p = SnackPlatform::new(NocConfig::default()).expect("valid platform");
        apply_mode(&mut p, mode);
        // MAC fusion off: intermediate values travel the transient ring,
        // which the fault plan targets.
        let mapper = MapperConfig::for_mesh(p.mesh()).with_mac_fusion(false);
        let kernel =
            built.context.compile(built.root, &mapper).expect("compiles");
        let plan = FaultPlan::seeded(0xFA57_0001)
            .with_link_fault(NodeId::new(5), Dir::East, 50, 700, LinkFaultKind::Down)
            .with_link_fault(
                NodeId::new(9),
                Dir::North,
                200,
                900,
                LinkFaultKind::Drop { rate: 1.0 },
            )
            .with_rcu_stall(NodeId::new(3), 100, 400);
        p.set_fault_plan(plan).expect("valid fault plan");
        p.enable_recovery(RecoveryConfig::aggressive());
        let run = p.run_kernel(&kernel, 10_000_000).expect("finishes under recovery");
        let rcu = p.rcu_stats();
        let rec = p.recovery_stats();
        let injected = p.net_injected_packets();
        let delivered = p.net_delivered_packets();
        format!(
            "cycles={} outputs={:?} rcu={}/{}/{} recovery={}/{} {}",
            run.cycles,
            run.outputs,
            rcu.executed,
            rcu.captures,
            rcu.stalled_cycles,
            rec.detected,
            rec.recovered,
            stats_fingerprint(injected, delivered, 0, p.finalize_stats()),
        )
    };
    let dense = run_mode(0);
    let active = run_mode(1);
    let event = run_mode(2);
    assert_eq!(
        active, dense,
        "faulted kernel run must be bit-identical across stepping modes"
    );
    assert_eq!(
        event, dense,
        "event-driven faulted kernel run must be bit-identical to dense"
    );
    assert_eq!(
        run_mode(3),
        dense,
        "sharded faulted kernel run must be bit-identical to dense"
    );
    assert_eq!(
        run_mode(4),
        dense,
        "event+sharded faulted kernel run must be bit-identical to dense"
    );
    assert!(active.contains("rcu="), "fingerprint is non-trivial");
}

/// Graceful degradation, part 1: a kernel that must *remap* (an RCU dies
/// under it mid-run) and *fail over* (its home-CPM corner is dead at
/// submission) completes bit-identically in every stepping mode and at
/// every legal shard count — including the degradation report itself.
/// This pins the hairiest new scheduling corners: the abort/quarantine
/// path, the namespace-epoch bump, and the escalation deadline (which
/// event-mode jumps must land on exactly).
#[test]
fn remap_and_failover_are_bit_identical_across_modes_and_shards() {
    use snacknoc::core::{PlatformConfig, RecoveryConfig};
    use snacknoc::noc::FaultPlan;
    use snacknoc_bench::perf::stats_fingerprint;

    let built = build(Kernel::Reduction, 48, 9);
    let run_with = |setup: &dyn Fn(&mut SnackPlatform)| {
        let mut p = SnackPlatform::with_cpm_count(NocConfig::default(), 4)
            .expect("valid platform");
        setup(&mut p);
        let mapper = MapperConfig::for_mesh(p.mesh()).with_mac_fusion(false);
        let kernel = built.context.compile(built.root, &mapper).expect("compiles");
        let home = p.cpm_at(0).node();
        let victim = p.mesh().node_at(1, 1);
        // Home corner dead at submission (failover) + a mid-run RCU death
        // (stall, quarantine, remapped retry).
        let plan = FaultPlan::seeded(0xDEAD_0001)
            .with_dead_rcu(home, 0)
            .with_dead_rcu(victim, 1);
        p.set_fault_plan(plan).expect("valid fault plan");
        p.enable_recovery(RecoveryConfig::aggressive());
        p.set_platform_config(PlatformConfig {
            no_progress_window: 4_096,
            ..PlatformConfig::default()
        })
        .expect("valid window");
        let run = p.run_kernel(&kernel, 10_000_000).expect("degrades gracefully");
        let d = run.degradation.expect("degraded run reports");
        assert_eq!(d.failovers, 1, "home corner moved to a standby");
        assert!(d.remaps >= 1, "the dead RCU forced a remap");
        let rcu = p.rcu_stats();
        let rec = p.recovery_stats();
        let injected = p.net_injected_packets();
        let delivered = p.net_delivered_packets();
        format!(
            "cycles={} outputs={:?} report={:?} rcu={}/{}/{} recovery={}/{} {}",
            run.cycles,
            run.outputs,
            d,
            rcu.executed,
            rcu.captures,
            rcu.stalled_cycles,
            rec.detected,
            rec.recovered,
            stats_fingerprint(injected, delivered, 0, p.finalize_stats()),
        )
    };
    let dense = run_with(&|p| apply_mode(p, 0));
    for mode in 1u8..=4 {
        assert_eq!(
            run_with(&|p| apply_mode(p, mode)),
            dense,
            "mode {mode}: remap/failover run must be bit-identical to dense"
        );
    }
    for shards in [1usize, 4] {
        assert_eq!(
            run_with(&move |p| p.set_sharding(shards).expect("shards fit the mesh")),
            dense,
            "{shards}-shard remap/failover run must be bit-identical to dense"
        );
    }
}

/// Graceful degradation, part 2: the chaos grid — randomized permanent +
/// transient schedules, each cell already spanning all five stepping
/// modes internally — merges to identical bytes on 1 and 4 workers, with
/// every invariant intact.
#[test]
fn chaos_grid_reports_are_worker_count_invariant() {
    use snacknoc_bench::chaos::{run_chaos, ChaosSpec};
    let spec = ChaosSpec::grid(&[Kernel::Mac, Kernel::Reduction], 8, &[1, 2, 3]);
    let serial = run_chaos(&spec.clone().with_threads(1));
    let parallel = run_chaos(&spec.with_threads(4));
    assert_eq!(
        serial.deterministic_json(),
        parallel.deterministic_json(),
        "threads=1 and threads=4 chaos grids must merge to identical bytes"
    );
    assert!(
        serial.all_invariants_hold(),
        "chaos invariants: {}",
        serial.deterministic_json()
    );
    assert!(
        serial.cells.iter().all(|c| c.modes_agree),
        "every cell is five-mode bit-identical"
    );
}

/// Active-set scheduling, part 3: mode choice composes with the worker
/// pool. A grid of {dense, active, event, sharded, event+sharded} x
/// seeds fingerprinted on 1 worker and on 4 workers merges to the same
/// bytes, and within the merged vector every mode quintet agrees per
/// seed. The sharded rows nest the shard worker threads *inside* the
/// sweep pool's workers — the two thread layers must not interact.
#[test]
fn active_vs_dense_fingerprints_are_worker_count_invariant() {
    use snacknoc_bench::sweep::parallel_map;
    let grid: Vec<(u64, u8)> =
        [7u64, 8, 9].iter().flat_map(|&s| [(s, 0u8), (s, 1), (s, 2), (s, 3), (s, 4)]).collect();
    let job = |i: usize| {
        let (seed, mode) = grid[i];
        format!("{:?}", fingerprint_stepping(seed, mode))
    };
    let serial = parallel_map(grid.len(), 1, job);
    let parallel = parallel_map(grid.len(), 4, job);
    assert_eq!(serial, parallel, "1-vs-4 workers must merge identically");
    for quintet in serial.chunks(5) {
        assert_eq!(quintet[0], quintet[1], "dense and active twins agree per seed");
        assert_eq!(quintet[0], quintet[2], "dense and event twins agree per seed");
        assert_eq!(quintet[0], quintet[3], "dense and sharded twins agree per seed");
        assert_eq!(quintet[0], quintet[4], "dense and event+sharded twins agree per seed");
    }
}

/// The multi-tenant service loop composes with every stepping mode: a
/// fixed service schedule (the SLO-sweep preset at two load levels, plus
/// the fault-tolerant decentralized preset) produces a bit-identical
/// report — every admission verdict, dispatch, completion cycle and
/// latency percentile — in all five modes, whether the grid runs on one
/// sweep worker or four. Event-mode clock jumps are capped at the next
/// service event (pending arrival, abort deadline), which is exactly the
/// property this matrix proves.
#[test]
fn service_reports_are_mode_and_worker_count_invariant() {
    use snacknoc::service::{decentralized_cpm, run_service, slo_sweep, Stepping};
    use snacknoc_bench::sweep::parallel_map;

    let specs = [slo_sweep(70, 41), slo_sweep(170, 41), decentralized_cpm(3, 42)];
    let grid: Vec<(usize, Stepping)> =
        (0..specs.len()).flat_map(|s| Stepping::ALL.map(|m| (s, m))).collect();
    let job = |i: usize| {
        let (s, mode) = grid[i];
        let mut spec = specs[s].clone();
        spec.stepping = mode;
        let report = run_service(&spec).expect("preset specs are valid");
        assert!(report.violations.is_empty(), "{mode}: {:?}", report.violations);
        report.fingerprint()
    };
    let serial = parallel_map(grid.len(), 1, job);
    let parallel = parallel_map(grid.len(), 4, job);
    assert_eq!(serial, parallel, "1-vs-4 workers must merge identically");
    for (s, quintet) in serial.chunks(5).enumerate() {
        for (m, fp) in quintet.iter().enumerate() {
            assert_eq!(
                *fp,
                quintet[0],
                "service spec {s}: {} diverged from dense",
                Stepping::ALL[m]
            );
        }
    }
}

/// The service grid driver itself (what `snack-service` ships as
/// `BENCH_service.json`) is byte-identical across sweep-worker counts.
#[test]
fn service_grid_json_is_worker_count_invariant() {
    use snacknoc_bench::service::{run_service_grid, ServiceGridSpec};
    let serial = run_service_grid(&ServiceGridSpec::new(&[80, 160], 19).with_threads(1));
    let parallel = run_service_grid(&ServiceGridSpec::new(&[80, 160], 19).with_threads(4));
    assert_eq!(
        serial.deterministic_json(),
        parallel.deterministic_json(),
        "threads=1 and threads=4 service grids must merge to identical bytes"
    );
    assert!(serial.all_invariants_hold(), "\n{}", serial.deterministic_json());
}
