//! Whole-stack determinism: identical seeds must reproduce identical
//! simulations bit-for-bit, across every subsystem at once. This guards
//! the common-random-numbers machinery the experiments rely on (any
//! accidental dependence on iteration order or ambient randomness breaks
//! the paper comparisons silently).

use snacknoc::compiler::{build, MapperConfig};
use snacknoc::core::SnackPlatform;
use snacknoc::noc::{NocConfig, TrafficClass};
use snacknoc::workloads::kernels::Kernel;
use snacknoc::workloads::suite::{profile, Benchmark};

/// A fingerprint of a multi-program run that any nondeterminism would
/// perturb.
fn fingerprint(seed: u64) -> (u64, u64, f64, u64, u64) {
    let mut p = SnackPlatform::new(
        NocConfig::dapper().with_priority_arbitration(true).with_sample_window(500),
    )
    .expect("valid platform");
    let built = build(Kernel::Spmv, 48, seed);
    let kernel = built
        .context
        .compile(built.root, &MapperConfig::for_mesh(p.mesh()))
        .expect("compiles");
    p.attach_workload(&profile(Benchmark::Graph500).scaled(0.0008), seed);
    let run = p.run_multiprogram(Some(&kernel), u64::MAX / 2);
    assert!(run.app_finished);
    let comm = run.stats.class(TrafficClass::Communication);
    (
        run.app_runtime,
        run.kernels_completed,
        run.stats.median_crossbar_utilization(),
        comm.latency_sum,
        p.rcu_stats().executed,
    )
}

#[test]
fn multiprogram_runs_are_bit_reproducible() {
    let a = fingerprint(41);
    let b = fingerprint(41);
    assert_eq!(a, b, "same seed, same universe");
    let c = fingerprint(42);
    assert_ne!(a, c, "different seeds diverge");
}

#[test]
fn kernel_results_do_not_depend_on_interference() {
    // QoS may change *when* a kernel finishes, never *what* it computes.
    let built = build(Kernel::Sgemm, 16, 7);
    let reference = built.context.interpret(built.root).expect("interpretable");
    for (arb, attach) in [(false, false), (true, false), (false, true), (true, true)] {
        let mut p = SnackPlatform::new(NocConfig::dapper().with_priority_arbitration(arb))
            .expect("valid platform");
        let kernel = built
            .context
            .compile(built.root, &MapperConfig::for_mesh(p.mesh()))
            .expect("compiles");
        if attach {
            p.attach_workload(&profile(Benchmark::Radix).scaled(0.0005), 3);
            p.run(1_000);
        }
        let run = p.run_kernel(&kernel, 10_000_000).expect("idle").expect("finishes");
        assert_eq!(run.outputs, reference, "arb={arb} attach={attach}");
    }
}
