//! Cross-crate integration tests: compile kernels with the compiler, run
//! them on the full platform, and check results, QoS behaviour and paper
//! headline properties end to end.

use snacknoc::compiler::{build, sim_size, Context, MapperConfig};
use snacknoc::core::{CpmState, SnackPlatform};
use snacknoc::noc::{NocConfig, NocPreset};
use snacknoc::workloads::kernels::Kernel;
use snacknoc::workloads::suite::{profile, Benchmark};

fn platform(cfg: NocConfig) -> SnackPlatform {
    SnackPlatform::new(cfg).expect("valid platform config")
}

#[test]
fn every_kernel_simulates_bit_exact_on_every_baseline_noc() {
    for preset in NocPreset::ALL {
        let cfg = NocConfig::preset(preset).with_vnets(3);
        for kernel in Kernel::ALL {
            let built = build(kernel, 14, 99);
            let mut p = platform(cfg.clone());
            let compiled = built
                .context
                .compile(built.root, &MapperConfig::for_mesh(p.mesh()))
                .expect("compiles");
            compiled.validate().expect("valid program");
            let run = p
                .run_kernel(&compiled, 1_000_000)
                .unwrap_or_else(|e| panic!("{kernel} on {preset} did not finish: {e}"));
            let reference = built.context.interpret(built.root).expect("interpretable");
            assert_eq!(run.outputs, reference, "{kernel} on {preset} must be bit-exact");
        }
    }
}

#[test]
fn kernels_scale_down_correctly_on_bigger_meshes() {
    // 8x4 mesh (32 RCUs): same kernels, same results, more parallelism.
    let cfg = NocConfig::default().with_mesh(8, 4);
    for kernel in Kernel::ALL {
        let built = build(kernel, 12, 5);
        let mut p = platform(cfg.clone());
        let compiled =
            built.context.compile(built.root, &MapperConfig::for_mesh(p.mesh())).expect("compiles");
        let run = p.run_kernel(&compiled, 1_000_000).expect("finishes");
        let reference = built.context.interpret(built.root).expect("interpretable");
        assert_eq!(run.outputs, reference, "{kernel} on 8x4");
    }
}

#[test]
fn paper_expression_runs_on_the_platform() {
    // D = alpha*A*B + C (paper Fig. 8) across expressions and tokens.
    let mut cxt = Context::new("fig8");
    let a = cxt.input(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3).unwrap();
    let b = cxt.input(&[1.0, 0.5, 0.25, 2.0, 1.0, 0.5], 3, 2).unwrap();
    let c = cxt.input(&[1.0, 1.0, 1.0, 1.0], 2, 2).unwrap();
    let alpha = cxt.scalar(0.5);
    let ab = cxt.mul(a, b).unwrap();
    let sab = cxt.mul(alpha, ab).unwrap();
    let d = cxt.add(sab, c).unwrap();
    let mut p = platform(NocConfig::default());
    let kernel = cxt.compile(d, &MapperConfig::for_mesh(p.mesh())).unwrap();
    let run = p.run_kernel(&kernel, 100_000).expect("finishes");
    assert_eq!(run.outputs, cxt.interpret(d).unwrap());
}

#[test]
fn cpm_is_busy_while_a_kernel_is_resident_and_recovers() {
    let mut p = platform(NocConfig::default());
    let built = build(Kernel::Mac, 64, 1);
    let kernel =
        built.context.compile(built.root, &MapperConfig::for_mesh(p.mesh())).unwrap();
    p.submit_kernel(&kernel).expect("idle cpm accepts");
    assert!(p.submit_kernel(&kernel).is_err(), "busy cpm rejects");
    // Drive to completion, then resubmit.
    for _ in 0..1_000_000 {
        p.step();
        if p.take_kernel_results().is_some() {
            break;
        }
    }
    assert_eq!(p.cpm().state(), CpmState::Idle);
    p.submit_kernel(&kernel).expect("idle again");
}

#[test]
fn interference_is_small_and_arbitration_helps() {
    // The QoS headline (Fig. 12) at test scale: kernel traffic changes a
    // heavy application's runtime by well under 5%, and priority
    // arbitration keeps the impact no worse.
    let seed = 77;
    let workload = profile(Benchmark::Radix).scaled(0.001);
    let runtime = |arb: bool, with_kernel: bool| {
        let cfg = NocConfig::dapper().with_priority_arbitration(arb);
        let mut p = platform(cfg);
        let built = build(Kernel::Sgemm, 16, seed);
        let kernel =
            built.context.compile(built.root, &MapperConfig::for_mesh(p.mesh())).unwrap();
        p.attach_workload(&workload, seed);
        let run = p.run_multiprogram_capped(with_kernel.then_some(&kernel));
        assert!(run.app_finished, "workload must finish");
        (run.app_runtime, run.kernels_completed)
    };
    let (base, _) = runtime(false, false);
    let (with_kernel, kernels) = runtime(false, true);
    assert!(kernels > 0, "kernels complete during the app");
    let impact = (with_kernel as f64 / base as f64 - 1.0).abs();
    assert!(impact < 0.05, "interference {impact} must stay small");
    let (base_arb, _) = runtime(true, false);
    let (with_arb, _) = runtime(true, true);
    let impact_arb = (with_arb as f64 / base_arb as f64 - 1.0).abs();
    assert!(impact_arb < 0.05, "arbitrated interference {impact_arb} small");
}

#[test]
fn snacknoc_outperforms_one_modelled_core_on_sgemm() {
    // The Fig. 9 headline, as a regression bound: SGEMM on SnackNoC beats
    // the single-core CPU model by at least 4x (paper: 6.15x).
    use snacknoc::cpu::{CpuKernel, CpuModel};
    let kernel = Kernel::Sgemm;
    let size = sim_size(kernel);
    let built = build(kernel, size, 42);
    let mut p = platform(NocConfig::default());
    let compiled =
        built.context.compile(built.root, &MapperConfig::for_mesh(p.mesh())).unwrap();
    let run = p.run_kernel(&compiled, 10_000_000).expect("finishes");
    let snack_seconds = run.cycles as f64 / 1e9;
    let cpu = CpuModel::haswell();
    let ops = snacknoc::compiler::op_count(kernel, size);
    let cpu_seconds = cpu.kernel_seconds(CpuKernel::Sgemm, ops, 1);
    let speedup = cpu_seconds / snack_seconds;
    assert!(speedup > 4.0, "SGEMM speedup {speedup:.2} must exceed 4x");
    assert!(speedup < 10.0, "speedup {speedup:.2} suspiciously high");
}

#[test]
fn slack_quartiles_are_ordered_like_the_paper() {
    use snacknoc::workloads::runner::run_benchmark;
    let run = |b: Benchmark, s: f64| {
        run_benchmark(&profile(b).scaled(s), NocConfig::dapper().with_sample_window(1_000), 13)
            .expect("valid config")
    };
    let fmm = run(Benchmark::Fmm, 0.005);
    let lulesh = run(Benchmark::Lulesh, 0.005);
    let graph = run(Benchmark::Graph500, 0.002);
    assert!(fmm.finished && lulesh.finished && graph.finished);
    assert!(fmm.median_crossbar() < 0.03, "FMM is low-utilization");
    assert!(
        lulesh.median_crossbar() > fmm.median_crossbar(),
        "LULESH above FMM"
    );
    assert!(
        graph.peak_crossbar() > 0.15,
        "Graph500 has high-utilization spikes"
    );
}

#[test]
fn overflow_management_engages_under_saturation() {
    // Flood the CMP vnets around the CPM and run a token-heavy kernel: the
    // ALO congestion monitor should trip at least once, and the kernel
    // must still complete correctly (overflowed tokens are replayed).
    let workload = profile(Benchmark::Radix).scaled(0.002);
    let mut p = platform(NocConfig::dapper());
    // A chained expression to force transient tokens through the ring.
    let mut cxt = Context::new("tokens");
    let a = cxt.input(&vec![1.0; 64], 8, 8).unwrap();
    let b = cxt.input(&vec![0.5; 64], 8, 8).unwrap();
    let ab = cxt.mul(a, b).unwrap();
    let two = cxt.scalar(2.0);
    let scaled = cxt.mul(two, ab).unwrap();
    let total = cxt.reduce(scaled).unwrap();
    let kernel = cxt.compile(total, &MapperConfig::for_mesh(p.mesh())).unwrap();
    p.attach_workload(&workload, 3);
    let run = p.run_multiprogram_capped(Some(&kernel));
    assert!(run.app_finished);
    assert!(run.kernels_completed > 0, "kernels complete despite congestion");
}
