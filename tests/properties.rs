//! Cross-crate property-based tests (on the in-repo `snacknoc_prng`
//! harness): the invariants listed in DESIGN.md §5, exercised with
//! randomly generated traffic, graphs and topologies.
//!
//! Each test runs `cases` deterministic cases (at least the 24 the old
//! proptest configuration used); on failure the harness prints the case
//! seed for exact replay via `snacknoc_prng::check::replay`.

use snacknoc::compiler::{Context, MapperConfig, Res};
use snacknoc::core::SnackPlatform;
use snacknoc::noc::{Mesh, Network, NocConfig, NodeId, PacketSpec, TrafficClass};
use snacknoc_prng::{prop_check, Rng};

/// Generator: a small mesh with at least one even side (ring exists).
fn mesh_dims(rng: &mut Rng) -> (u16, u16) {
    (rng.range(2..6) as u16, 2 * rng.range(1..4) as u16)
}

/// Every injected packet is delivered exactly once, regardless of traffic
/// pattern, vnet mix, packet sizes and mesh shape.
#[test]
fn flit_conservation() {
    prop_check!(cases = 24, seed = 0x51AC_0001, |rng| {
        let (cols, rows) = mesh_dims(rng);
        let stagger = rng.range(1..5);
        let cfg = NocConfig::default().with_mesh(cols, rows);
        let mut net: Network<usize> = Network::new(cfg).unwrap();
        let n = net.mesh().node_count();
        let mut sent = 0u64;
        for i in 0..rng.range_usize(1..120) {
            let spec = PacketSpec::new(
                NodeId::new(rng.range_usize(0..64) % n),
                NodeId::new(rng.range_usize(0..64) % n),
                rng.range(0..3) as u8,
                TrafficClass::Communication,
                rng.range(1..200) as u32,
                i,
            );
            net.inject(spec).unwrap();
            sent += 1;
            if (i as u64).is_multiple_of(stagger) {
                net.step();
            }
        }
        assert!(net.run_until_drained(2_000_000).is_ok(), "network must drain");
        assert_eq!(net.delivered_packets(), sent);
        let mut got = Vec::new();
        for node in 0..n {
            for p in net.drain_ejected(NodeId::new(node)) {
                assert_eq!(p.dst.index(), node, "delivered at its destination");
                got.push(p.payload);
            }
        }
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len() as u64, sent, "no duplicates");
        assert_eq!(net.buffered_flits(), 0, "no stranded flits");
    });
}

/// The ring route is a Hamiltonian cycle on every mesh with an even side.
#[test]
fn ring_is_hamiltonian() {
    prop_check!(cases = 32, seed = 0x51AC_0002, |rng| {
        let (cols, rows) = mesh_dims(rng);
        let mesh = Mesh::new(cols, rows);
        let ring = mesh.ring().unwrap();
        assert_eq!(ring.len(), mesh.node_count());
        let mut seen = vec![false; mesh.node_count()];
        for n in &ring {
            assert!(!seen[n.index()]);
            seen[n.index()] = true;
        }
        for i in 0..ring.len() {
            let a = ring[i];
            let b = ring[(i + 1) % ring.len()];
            let adjacent = snacknoc::noc::Dir::ROUTER_DIRS
                .iter()
                .any(|&d| mesh.neighbor(a, d) == Some(b));
            assert!(adjacent, "consecutive ring nodes adjacent");
        }
    });
}

/// Compiling and simulating a random dataflow expression produces
/// bit-exactly the interpreter's result — under either mapping strategy
/// (MAC fusion on or off).
#[test]
fn random_expressions_simulate_exactly() {
    prop_check!(cases = 24, seed = 0x51AC_0003, |rng| {
        let (m, k, n) =
            (rng.range_usize(1..4), rng.range_usize(1..4), rng.range_usize(1..4));
        let values: Vec<i32> =
            (0..64).map(|_| rng.range_i64(-64..64) as i32).collect();
        let fusion = rng.flip();
        let v = |i: usize| f64::from(values[i % values.len()]) / 8.0;
        let mut cxt = Context::new("prop");
        let a_data: Vec<f64> = (0..m * k).map(v).collect();
        let b_data: Vec<f64> = (0..k * n).map(|i| v(i + 7)).collect();
        let a = cxt.input(&a_data, m, k).unwrap();
        let b = cxt.input(&b_data, k, n).unwrap();
        let mut root: Res = cxt.mul(a, b).unwrap();
        // Grow a random chain of further array expressions on top.
        for step in 0..rng.range_usize(1..6) {
            let op = rng.range(0..5) as u8;
            let shape = cxt.shape(root).unwrap();
            let extra: Vec<f64> =
                (0..shape.len()).map(|i| v(i + 13 * (step + 1))).collect();
            let e = cxt.input(&extra, shape.rows, shape.cols).unwrap();
            root = match op {
                0 => cxt.add(root, e).unwrap(),
                1 => cxt.sub(root, e).unwrap(),
                2 => cxt.elem_mul(root, e).unwrap(),
                3 => {
                    let s = cxt.scalar(v(step) + 0.5);
                    cxt.mul(s, root).unwrap()
                }
                _ => cxt.reduce(root).unwrap(),
            };
        }
        let mut platform = SnackPlatform::new(NocConfig::default()).unwrap();
        let mapper = MapperConfig::for_mesh(platform.mesh()).with_mac_fusion(fusion);
        let kernel = cxt.compile(root, &mapper).unwrap();
        kernel.validate().unwrap();
        let run = platform
            .run_kernel(&kernel, 5_000_000)
            .expect("kernel must finish");
        let reference = cxt.interpret(root).unwrap();
        assert_eq!(run.outputs, reference);
    });
}

/// The MESI protocol is live: random access patterns always complete,
/// every directory quiesces, and no packets are left in the network.
#[test]
fn coherence_protocol_never_deadlocks() {
    use snacknoc::workloads::coherence::{AccessPattern, CoherentEngine};
    prop_check!(cases = 24, seed = 0x51AC_0004, |rng| {
        let pattern = AccessPattern {
            private_lines: 128,
            shared_lines: rng.range(1..64),
            shared_fraction: rng.unit_f64(),
            write_fraction: rng.unit_f64(),
            think_time: rng.range_f64(1.0..120.0),
            accesses_per_core: 120,
        };
        let engine_seed = rng.range(0..1000);
        let mut net: snacknoc::noc::Network<snacknoc::workloads::coherence::CohMessage> =
            snacknoc::noc::Network::new(NocConfig::dapper()).unwrap();
        let mut eng =
            CoherentEngine::new(pattern, *net.mesh(), Default::default(), engine_seed);
        let nodes: Vec<_> = net.mesh().nodes().collect();
        while !eng.done() && net.cycle() < 5_000_000 {
            for spec in eng.tick(net.cycle()) {
                net.inject(spec).unwrap();
            }
            net.step();
            let now = net.cycle();
            for &node in &nodes {
                for pkt in net.drain_ejected(node) {
                    eng.deliver(now, node, pkt.payload);
                }
            }
        }
        assert!(eng.done(), "protocol must complete all accesses");
        assert_eq!(eng.completed(), 120 * 16);
        // Drain residual acks/writebacks.
        assert!(net.run_until_drained(1_000_000).is_ok());
    });
}

/// Random small sweep grids produce byte-identical deterministic JSON
/// whether they run on one worker or four — the sweep pool's merge order
/// never leaks thread scheduling into the report.
#[test]
fn random_sweeps_are_thread_count_invariant() {
    use snacknoc::noc::NocPreset;
    use snacknoc::workloads::kernels::Kernel;
    use snacknoc::workloads::suite::Benchmark;
    use snacknoc_bench::sweep::{run_sweep, SweepCell, SweepSpec};
    // Light benchmarks only: property cases must stay CI-scale.
    const LIGHT: [Benchmark; 4] =
        [Benchmark::Fmm, Benchmark::Cholesky, Benchmark::Volrend, Benchmark::Barnes];
    prop_check!(cases = 6, seed = 0x51AC_0006, |rng| {
        let n_bench = rng.range_usize(1..3);
        let benchmarks: Vec<Benchmark> =
            (0..n_bench).map(|_| LIGHT[rng.range_usize(0..LIGHT.len())]).collect();
        let presets =
            [NocPreset::ALL[rng.range_usize(0..NocPreset::ALL.len())]];
        let seeds: Vec<u64> = (0..rng.range(1..3)).map(|_| rng.range(0..100)).collect();
        let scale = 0.001 + rng.unit_f64() * 0.002;
        let mut cells: Vec<SweepCell> =
            SweepSpec::grid(&benchmarks, &presets, &seeds, scale).cells;
        if rng.flip() {
            let kernel = Kernel::ALL[rng.range_usize(0..Kernel::ALL.len())];
            let size = rng.range_usize(8..24);
            cells.extend(
                SweepSpec::grid(&[], &presets, &[], scale)
                    .with_kernels(&[kernel], size, &presets, &seeds)
                    .cells,
            );
        }
        let serial = run_sweep(&SweepSpec { cells: cells.clone(), threads: 1, samples: 1 });
        let parallel = run_sweep(&SweepSpec { cells, threads: 4, samples: 1 });
        assert_eq!(
            serial.deterministic_json(),
            parallel.deterministic_json(),
            "sweep merge must not depend on worker scheduling"
        );
    });
}

/// Fault tolerance: any *single transient link fault* — one random link,
/// one bounded window, any kind (down/drop/corrupt) — with recovery
/// enabled completes every paper kernel with outputs bit-identical to the
/// fault-free run, and the watchdog recovers everything it detects.
#[test]
fn single_transient_link_fault_recovers_bit_identically() {
    use snacknoc::compiler::build;
    use snacknoc::core::RecoveryConfig;
    use snacknoc::noc::{Dir, FaultPlan, LinkFaultKind};
    use snacknoc::workloads::kernels::Kernel;
    prop_check!(cases = 12, seed = 0x51AC_0007, |rng| {
        let kernel = Kernel::ALL[rng.range_usize(0..Kernel::ALL.len())];
        let size = rng.range_usize(6..16);
        let input_seed = rng.range(0..1000);
        let built = build(kernel, size, input_seed);

        let compile = |platform: &SnackPlatform| {
            // MAC fusion off: intermediate values travel the transient
            // ring, the fault target.
            let mapper =
                MapperConfig::for_mesh(platform.mesh()).with_mac_fusion(false);
            built.context.compile(built.root, &mapper).unwrap()
        };

        // Fault-free reference run.
        let mut clean = SnackPlatform::new(NocConfig::default()).unwrap();
        let compiled = compile(&clean);
        let clean_run = clean.run_kernel(&compiled, 10_000_000).expect("clean run finishes");

        // One random transient fault on one random (valid) link.
        let mut faulted = SnackPlatform::new(NocConfig::default()).unwrap();
        let mesh = *faulted.mesh();
        let (node, dir) = loop {
            let node = NodeId::new(rng.range_usize(0..mesh.node_count()));
            let dir = Dir::ROUTER_DIRS[rng.range_usize(0..4)];
            if mesh.neighbor(node, dir).is_some() {
                break (node, dir);
            }
        };
        let start = rng.range(0..400);
        let end = start + rng.range(100..1600);
        let kind = match rng.range(0..3) {
            0 => LinkFaultKind::Down,
            1 => LinkFaultKind::Drop { rate: 1.0 },
            _ => LinkFaultKind::Corrupt { rate: 1.0 },
        };
        let plan = FaultPlan::seeded(rng.range(0..1 << 30))
            .with_link_fault(node, dir, start, end, kind);
        faulted.set_fault_plan(plan).unwrap();
        faulted.enable_recovery(RecoveryConfig::aggressive());
        let run = faulted
            .run_kernel(&compiled, 10_000_000)
            .expect("faulted run completes under recovery");

        assert_eq!(
            run.outputs, clean_run.outputs,
            "{kernel}-{size}: outputs must be bit-identical to fault-free \
             ({kind:?} on {node:?}/{dir:?} cycles {start}..{end})"
        );
        let rs = faulted.recovery_stats();
        assert_eq!(
            rs.recovered, rs.detected,
            "every detected loss recovers ({kind:?} on {node:?}/{dir:?})"
        );
    });
}

/// Random fault-sweep grids produce byte-identical JSON on 1 and 4
/// workers, and every cell is internally consistent (finished cells are
/// verified with `recovered == detected`).
#[test]
fn random_fault_sweeps_are_thread_count_invariant() {
    use snacknoc::workloads::kernels::Kernel;
    use snacknoc_bench::faults::{run_fault_sweep, FaultScenario, FaultSweepSpec};
    prop_check!(cases = 4, seed = 0x51AC_0008, |rng| {
        let kernel = Kernel::ALL[rng.range_usize(0..Kernel::ALL.len())];
        let size = rng.range_usize(6..14);
        let rate = 0.01 + rng.unit_f64() * 0.1;
        let scenarios = [
            FaultScenario::Clean,
            FaultScenario::Drop { rate },
            FaultScenario::Corrupt { rate },
        ];
        let seeds: Vec<u64> = (0..rng.range(1..3)).map(|_| rng.range(0..100)).collect();
        let spec = FaultSweepSpec::grid(&[kernel], size, &scenarios, &seeds);
        let serial = run_fault_sweep(&spec);
        let parallel = run_fault_sweep(&spec.clone().with_threads(4));
        assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
        assert!(serial.all_consistent(), "{}", serial.deterministic_json());
    });
}

/// Mapping is deterministic: the same context compiles to the same
/// instruction stream every time.
#[test]
fn mapping_is_deterministic() {
    prop_check!(cases = 32, seed = 0x51AC_0005, |rng| {
        let seedlets: Vec<i32> =
            (0..16).map(|_| rng.range_i64(-16..16) as i32).collect();
        let rows = rng.range_usize(1..4);
        let cols = rng.range_usize(1..4);
        let build = || {
            let mut cxt = Context::new("det");
            let data: Vec<f64> = seedlets.iter().map(|&x| f64::from(x) / 4.0).collect();
            let a = cxt.input(&data[..rows * cols], rows, cols).unwrap();
            let b = cxt.input(&data[..rows * cols], rows, cols).unwrap();
            let s = cxt.add(a, b).unwrap();
            let r = cxt.reduce(s).unwrap();
            cxt.compile(r, &MapperConfig::for_mesh(&Mesh::new(4, 4))).unwrap()
        };
        let k1 = build();
        let k2 = build();
        assert_eq!(k1.instructions, k2.instructions);
    });
}

/// `Trace -> CSV -> Trace` is the identity for arbitrary (valid) traces:
/// the CSV encoding loses nothing, and `Trace::new`'s cycle ordering makes
/// the round trip canonical.
#[test]
fn workload_trace_csv_round_trip_is_identity() {
    use snacknoc::workloads::trace::{Trace, TraceEvent};
    prop_check!(cases = 48, seed = 0x51AC_0008, |rng| {
        let n = rng.range_usize(0..64);
        let events: Vec<TraceEvent> = (0..n)
            .map(|_| TraceEvent {
                cycle: rng.range(0..1_000_000),
                src: rng.range(0..256) as u32,
                dst: rng.range(0..256) as u32,
                vnet: rng.range(0..4) as u8,
                size_bytes: rng.range(1..4096) as u32,
            })
            .collect();
        let trace = Trace::new(events);
        let mut csv = Vec::new();
        trace.to_csv(&mut csv).expect("in-memory write");
        let parsed = Trace::from_csv(csv.as_slice()).expect("own CSV parses");
        assert_eq!(parsed, trace, "round trip must be the identity");
        // And the round trip is a fixed point: re-serialising gives the
        // same bytes.
        let mut csv2 = Vec::new();
        parsed.to_csv(&mut csv2).expect("in-memory write");
        assert_eq!(csv, csv2, "serialisation is byte-stable");
    });
}

/// Activity-driven stepping is bit-identical to dense stepping on *random*
/// workloads: any mesh shape, any vnet mix, any packet sizes, any injection
/// schedule, and an optional random transient link fault. The full
/// network-stats fingerprint (occupancy series, utilizations, latency
/// percentiles, per-class counters) must match — the active-set scheduler
/// may only change *when routers are visited*, never what they compute
/// (DESIGN.md §11).
#[test]
fn random_workloads_step_identically_active_and_dense() {
    use snacknoc::noc::{Dir, FaultPlan, LinkFaultKind};
    use snacknoc_bench::perf::stats_fingerprint;
    prop_check!(cases = 16, seed = 0x51AC_0009, |rng| {
        let (cols, rows) = mesh_dims(rng);
        let cfg = NocConfig::default()
            .with_mesh(cols, rows)
            .with_sample_window(rng.range(50..400));
        let mesh = Mesh::new(cols, rows);
        let n = mesh.node_count();
        let cycles = rng.range(400..1500);

        // Pre-generate the injection schedule so both modes replay the
        // exact same traffic.
        let mut schedule: Vec<(u64, usize, usize, u8, u32)> = (0..rng
            .range_usize(5..80))
            .map(|_| {
                (
                    rng.range(0..cycles / 2),
                    rng.range_usize(0..n),
                    rng.range_usize(0..n),
                    rng.range(0..3) as u8,
                    rng.range(1..120) as u32,
                )
            })
            .collect();
        schedule.sort_unstable();

        // Optionally overlay one random transient link fault: fault
        // windows are wakeup edges for the active-set scheduler, so this
        // probes the scheduling corner dense mode trivially gets right.
        let fault = if rng.flip() {
            let (node, dir) = loop {
                let node = NodeId::new(rng.range_usize(0..n));
                let dir = Dir::ROUTER_DIRS[rng.range_usize(0..4)];
                if mesh.neighbor(node, dir).is_some() {
                    break (node, dir);
                }
            };
            let start = rng.range(0..cycles / 2);
            let end = start + rng.range(20..400);
            let kind = match rng.range(0..2) {
                0 => LinkFaultKind::Down,
                _ => LinkFaultKind::Drop { rate: 0.5 },
            };
            Some((node, dir, start, end, kind, rng.range(0..1 << 30)))
        } else {
            None
        };

        let run_mode = |dense: bool| {
            let mut net: Network<usize> = Network::new(cfg.clone()).unwrap();
            net.set_dense_stepping(dense);
            if let Some((node, dir, start, end, kind, fseed)) = fault {
                net.set_fault_plan(
                    FaultPlan::seeded(fseed).with_link_fault(node, dir, start, end, kind),
                )
                .unwrap();
            }
            let mut cursor = 0usize;
            let mut drained = Vec::new();
            let mut ejected_log = Vec::new();
            for cycle in 0..cycles {
                while cursor < schedule.len() && schedule[cursor].0 == cycle {
                    let (_, src, dst, vnet, bytes) = schedule[cursor];
                    net.inject(PacketSpec::new(
                        NodeId::new(src),
                        NodeId::new(dst),
                        vnet,
                        TrafficClass::Communication,
                        bytes,
                        cursor,
                    ))
                    .unwrap();
                    cursor += 1;
                }
                net.step();
                for node in 0..n {
                    net.drain_ejected_into(NodeId::new(node), &mut drained);
                    for p in drained.drain(..) {
                        ejected_log.push((cycle, node, p.payload));
                    }
                }
            }
            let injected = net.injected_packets();
            let delivered = net.delivered_packets();
            let pending = net.pending_packets();
            format!(
                "ejections={ejected_log:?} backlog={} {}",
                net.total_ni_backlog(),
                stats_fingerprint(injected, delivered, pending, net.finalize_stats()),
            )
        };
        let active = run_mode(false);
        let dense = run_mode(true);
        assert_eq!(
            active, dense,
            "{cols}x{rows} mesh, {} packets, fault={fault:?}: \
             active-set and dense stepping must be bit-identical",
            schedule.len()
        );
    });
}

/// Event-driven time-wheel stepping (DESIGN.md §12) *and* sharded
/// worker-thread stepping (DESIGN.md §13, at a random legal shard count,
/// alone and composed with event jumps) are bit-identical to dense
/// stepping on random meshes with random traffic bursts separated by
/// long dead gaps, under random *short-window* fault plans. The idle
/// gaps are where event mode jumps, every fault-window edge is a
/// calendar event a jump must land on, and the fault verdicts are
/// hash-derived per flit — a single missed edge or misordered boundary
/// exchange shifts the drop/corrupt schedule and breaks the fingerprint.
#[test]
fn random_short_window_fault_plans_step_identically_event_and_dense() {
    use snacknoc::noc::{Dir, FaultPlan, LinkFaultKind};
    use snacknoc_bench::perf::stats_fingerprint;
    prop_check!(cases = 12, seed = 0x51AC_000A, |rng| {
        let (cols, rows) = mesh_dims(rng);
        let cfg = NocConfig::default()
            .with_mesh(cols, rows)
            .with_sample_window(rng.range(50..400));
        let mesh = Mesh::new(cols, rows);
        let n = mesh.node_count();

        // A few injection bursts separated by dead gaps of up to 8k cycles,
        // then a long idle tail. Each burst: (cycle, [(src, dst, vnet, bytes)]).
        type Burst = (u64, Vec<(usize, usize, u8, u32)>);
        let n_bursts = rng.range_usize(1..4);
        let mut bursts: Vec<Burst> = Vec::new();
        let mut at = 0u64;
        for _ in 0..n_bursts {
            at += rng.range(0..8_000);
            let packets = (0..rng.range_usize(1..20))
                .map(|_| {
                    (
                        rng.range_usize(0..n),
                        rng.range_usize(0..n),
                        rng.range(0..3) as u8,
                        rng.range(1..120) as u32,
                    )
                })
                .collect();
            bursts.push((at, packets));
            at += 1;
        }
        let horizon = at + rng.range(5_000..30_000);

        // Several brief link faults; their window edges land anywhere,
        // including deep inside the idle stretches.
        let mut plan = FaultPlan::seeded(rng.range(0..1 << 30));
        for _ in 0..rng.range_usize(1..5) {
            let (node, dir) = loop {
                let node = NodeId::new(rng.range_usize(0..n));
                let dir = Dir::ROUTER_DIRS[rng.range_usize(0..4)];
                if mesh.neighbor(node, dir).is_some() {
                    break (node, dir);
                }
            };
            let start = rng.range(0..horizon);
            let end = start + rng.range(1..200);
            let kind = match rng.range(0..3) {
                0 => LinkFaultKind::Down,
                1 => LinkFaultKind::Drop { rate: rng.unit_f64() },
                _ => LinkFaultKind::Corrupt { rate: rng.unit_f64() },
            };
            plan = plan.with_link_fault(node, dir, start, end, kind);
        }

        // A random legal shard count for the sharded modes (bands must
        // each span at least one mesh row).
        let shards = 1 + rng.range_usize(0..rows as usize);

        let run_mode = |mode: u8| {
            let mut net: Network<usize> = Network::new(cfg.clone()).unwrap();
            match mode {
                0 => net.set_dense_stepping(true),
                1 => {}
                2 => net.set_event_stepping(true),
                3 => net.set_sharding(shards).unwrap(),
                _ => {
                    net.set_event_stepping(true);
                    net.set_sharding(shards).unwrap();
                }
            }
            net.set_fault_plan(plan.clone()).unwrap();
            let mut tag = 0usize;
            for (cycle, packets) in &bursts {
                net.step_until(*cycle);
                for &(src, dst, vnet, bytes) in packets {
                    net.inject(PacketSpec::new(
                        NodeId::new(src),
                        NodeId::new(dst),
                        vnet,
                        TrafficClass::Communication,
                        bytes,
                        tag,
                    ))
                    .unwrap();
                    tag += 1;
                }
            }
            net.step_until(horizon);
            let mut drained = 0usize;
            for node in 0..n {
                drained += net.drain_ejected(NodeId::new(node)).len();
            }
            format!(
                "drained={drained} {}",
                stats_fingerprint(
                    net.injected_packets(),
                    net.delivered_packets(),
                    net.pending_packets(),
                    net.finalize_stats(),
                ),
            )
        };
        let dense = run_mode(0);
        let active = run_mode(1);
        let event = run_mode(2);
        assert_eq!(
            active, dense,
            "{cols}x{rows} mesh, horizon {horizon}: active diverged from dense"
        );
        assert_eq!(
            event, dense,
            "{cols}x{rows} mesh, horizon {horizon}: event diverged from dense"
        );
        assert_eq!(
            run_mode(3),
            dense,
            "{cols}x{rows} mesh, {shards} shards, horizon {horizon}: sharded diverged from dense"
        );
        assert_eq!(
            run_mode(4),
            dense,
            "{cols}x{rows} mesh, {shards} shards, horizon {horizon}: \
             event+sharded diverged from dense"
        );
    });
}

/// The pooled payload slab (DESIGN.md §16) is invisible to every
/// observable: on random meshes with random multi-flit traffic and random
/// fault plans, all five stepping modes (dense oracle, active, event,
/// sharded at a random shard count, event+sharded) deliver bit-identical
/// payload contents and per-packet metadata — delivered cycle, hop count,
/// corruption mark — and identical stats. Once the network drains, every
/// slot has been returned to the pool (delivered payloads are moved out,
/// dropped packets' payloads are released), with the same high-water mark
/// and demand-growth count in every mode: slot recycling is deterministic
/// even across the sharded mailbox boundary.
#[test]
fn pooled_payloads_are_bit_identical_across_modes_and_leak_free() {
    use snacknoc::noc::{Dir, FaultPlan, LinkFaultKind};
    use snacknoc_bench::perf::stats_fingerprint;
    prop_check!(cases = 10, seed = 0x51AC_000C, |rng| {
        let (cols, rows) = mesh_dims(rng);
        let cfg = NocConfig::default()
            .with_mesh(cols, rows)
            .with_sample_window(rng.range(50..400));
        let mesh = Mesh::new(cols, rows);
        let n = mesh.node_count();

        // Random staggered traffic: (cycle, src, dst, vnet, bytes, tag).
        // Sizes span single-flit packets up to long multi-flit worms so
        // head-only payload refs and reassembly both churn the pool.
        let mut schedule = Vec::new();
        let mut at = 0u64;
        for tag in 0..rng.range_usize(1..40) {
            at += rng.range(0..80);
            schedule.push((
                at,
                rng.range_usize(0..n),
                rng.range_usize(0..n),
                rng.range(0..3) as u8,
                rng.range(1..160) as u32,
                tag,
            ));
        }
        let horizon = at + 1;

        // A few brief link faults so drops and corruption exercise the
        // head-release and tail-drop pool paths, not just delivery.
        let mut plan = FaultPlan::seeded(rng.range(0..1 << 30));
        for _ in 0..rng.range_usize(0..4) {
            let (node, dir) = loop {
                let node = NodeId::new(rng.range_usize(0..n));
                let dir = Dir::ROUTER_DIRS[rng.range_usize(0..4)];
                if mesh.neighbor(node, dir).is_some() {
                    break (node, dir);
                }
            };
            let start = rng.range(0..horizon + 200);
            let end = start + rng.range(1..200);
            let kind = match rng.range(0..3) {
                0 => LinkFaultKind::Down,
                1 => LinkFaultKind::Drop { rate: rng.unit_f64() },
                _ => LinkFaultKind::Corrupt { rate: rng.unit_f64() },
            };
            plan = plan.with_link_fault(node, dir, start, end, kind);
        }

        let shards = 1 + rng.range_usize(0..rows as usize);

        let run_mode = |mode: u8| {
            let mut net: Network<usize> = Network::new(cfg.clone()).unwrap();
            match mode {
                0 => net.set_dense_stepping(true),
                1 => {}
                2 => net.set_event_stepping(true),
                3 => net.set_sharding(shards).unwrap(),
                _ => {
                    net.set_event_stepping(true);
                    net.set_sharding(shards).unwrap();
                }
            }
            net.set_fault_plan(plan.clone()).unwrap();
            for &(cycle, src, dst, vnet, bytes, tag) in &schedule {
                net.step_until(cycle);
                net.inject(PacketSpec::new(
                    NodeId::new(src),
                    NodeId::new(dst),
                    vnet,
                    TrafficClass::Communication,
                    bytes,
                    tag,
                ))
                .unwrap();
            }
            net.step_until(horizon);
            assert!(
                net.run_until_drained(4_000_000).is_ok(),
                "{cols}x{rows} mesh mode {mode}: network must drain"
            );
            let mut log = Vec::new();
            for node in 0..n {
                for p in net.drain_ejected(NodeId::new(node)) {
                    log.push((node, p.delivered_at, p.hops, p.corrupted, p.payload));
                }
            }
            assert_eq!(
                net.payload_pool_live(),
                0,
                "{cols}x{rows} mesh mode {mode}: drained pool leaked payloads"
            );
            format!(
                "log={log:?} pool={}g{} {}",
                net.payload_pool_high_water(),
                net.payload_pool_growth_events(),
                stats_fingerprint(
                    net.injected_packets(),
                    net.delivered_packets(),
                    net.pending_packets(),
                    net.finalize_stats(),
                ),
            )
        };
        let dense = run_mode(0);
        for mode in 1u8..=4 {
            assert_eq!(
                run_mode(mode),
                dense,
                "{cols}x{rows} mesh, {shards} shards: mode {mode} pooled \
                 payloads diverged from dense"
            );
        }
    });
}

/// Graceful degradation under *random chaos schedules* (permanent RCU and
/// link deaths mixed with transient drop/corrupt noise, on 1- or 4-CPM
/// platforms) produces the identical verdict in every stepping mode:
/// same outcome (completion, timeout, or typed unrecoverable), same
/// cycle counts, same outputs, and a bit-equal [`DegradationReport`].
/// Completed runs must additionally match the fixed-point reference
/// interpreter — remapping and failover may move work, never change it.
#[test]
fn random_chaos_schedules_degrade_identically_in_every_mode() {
    use snacknoc::compiler::build;
    use snacknoc::core::{PlatformConfig, PlatformError, RecoveryConfig};
    use snacknoc::noc::NocPreset;
    use snacknoc::workloads::kernels::Kernel;
    use snacknoc_bench::chaos::{chaos_schedule, CHAOS_WINDOW};
    use snacknoc_bench::perf::stats_fingerprint;
    prop_check!(cases = 6, seed = 0x51AC_000B, |rng| {
        let seed = rng.next_u64();
        let kernel = Kernel::ALL[rng.range_usize(0..Kernel::ALL.len())];
        let size = rng.range_usize(6..12);
        let built = build(kernel, size, seed);
        let reference = built.context.interpret(built.root).expect("interpretable");
        let cfg = NocConfig::preset(NocPreset::BiNoChs);
        let sched = {
            let probe = SnackPlatform::new(cfg.clone()).expect("valid platform");
            chaos_schedule(probe.mesh(), seed)
        };
        let run_mode = |mode: u8| {
            let mut p = SnackPlatform::with_cpm_count(cfg.clone(), sched.cpm_count)
                .expect("valid platform");
            match mode {
                0 => p.set_dense_stepping(true),
                1 => {}
                2 => p.set_event_stepping(true),
                3 => p.set_sharding(2).expect("two shards fit"),
                _ => {
                    p.set_event_stepping(true);
                    p.set_sharding(2).expect("two shards fit");
                }
            }
            let mapper = MapperConfig::for_mesh(p.mesh()).with_mac_fusion(false);
            let compiled = built.context.compile(built.root, &mapper).expect("compiles");
            p.set_fault_plan(sched.plan.clone()).expect("valid plan");
            p.enable_recovery(RecoveryConfig::aggressive());
            p.set_platform_config(PlatformConfig {
                no_progress_window: CHAOS_WINDOW,
                ..PlatformConfig::default()
            })
            .expect("valid window");
            let cap = 800 * compiled.len() as u64 + 8 * CHAOS_WINDOW + 2_000_000;
            let verdict = match p.run_kernel(&compiled, cap) {
                Ok(run) => {
                    assert_eq!(
                        run.outputs, reference,
                        "{kernel}-{size}/s{seed} mode {mode}: degraded outputs drifted"
                    );
                    format!("ok cycles={} report={:?}", run.cycles, run.degradation)
                }
                Err(PlatformError::KernelTimeout { cycles, .. }) => {
                    format!("timeout cycles={cycles}")
                }
                Err(PlatformError::Unrecoverable { resource, attempts, cycles, .. }) => {
                    format!("unrecoverable {resource} attempts={attempts} cycles={cycles}")
                }
                Err(e) => panic!("unexpected platform error: {e}"),
            };
            let rec = p.recovery_stats();
            format!(
                "{verdict} recovery={}/{}/{} {}",
                rec.detected,
                rec.recovered,
                rec.retries,
                stats_fingerprint(
                    p.net_injected_packets(),
                    p.net_delivered_packets(),
                    0,
                    p.finalize_stats(),
                ),
            )
        };
        let dense = run_mode(0);
        for mode in 1u8..=4 {
            assert_eq!(
                run_mode(mode),
                dense,
                "{kernel}-{size}/s{seed}: mode {mode} diverged from dense under chaos"
            );
        }
    });
}

/// Randomized multi-tenant service schedules are stepping-mode invariant:
/// for any tenant mix (class, kernel, arrival process), queue policy and
/// CPM count, the service report's fingerprint — every admission verdict,
/// completion count and latency percentile — is identical between the
/// default active-set loop and a randomly chosen other stepping mode, and
/// its conservation invariants hold (submitted = admitted + rejected,
/// admitted = completed + aborted + residual).
#[test]
fn service_schedules_are_mode_invariant() {
    use snacknoc::service::{
        run_service, Arrivals, ClassPolicy, QosClass, ServiceSpec, Stepping, TenantSpec,
    };
    use snacknoc::workloads::kernels::Kernel;

    prop_check!(cases = 12, seed = 0x51AC_0009, |rng| {
        let kernels = [Kernel::Mac, Kernel::Reduction, Kernel::Spmv];
        let n = rng.range_usize(1..5);
        let tenants: Vec<TenantSpec> = (0..n)
            .map(|i| {
                let class = QosClass::ALL[rng.range_usize(0..3)];
                let kernel = kernels[rng.range_usize(0..kernels.len())];
                let size = match kernel {
                    Kernel::Spmv => rng.range_usize(4..8),
                    _ => rng.range_usize(16..56),
                };
                let arrivals = if rng.flip() {
                    Arrivals::Open { mean_gap: rng.range(300..2_500) }
                } else {
                    Arrivals::Closed {
                        think: rng.range(100..1_200),
                        inflight: rng.range(1..3) as u32,
                    }
                };
                TenantSpec::new(format!("t{i}"), class, kernel, size, arrivals)
            })
            .collect();
        let mut spec = ServiceSpec::new(tenants, rng.next_u64());
        spec.cpm_count = rng.range_usize(1..3);
        spec.horizon = rng.range(10_000..30_000);
        spec.drain = 20_000;
        for p in &mut spec.policies {
            *p = ClassPolicy::new(rng.range_usize(1..6), rng.range(512..8_192));
        }

        let reference = run_service(&spec).expect("generated specs are valid");
        assert!(reference.violations.is_empty(), "{:?}", reference.violations);
        for t in &reference.tenants {
            assert_eq!(t.submitted, t.admitted + t.rejected(), "{}", t.name);
            assert_eq!(t.admitted, t.completed + t.aborted + t.residual, "{}", t.name);
        }

        let other = [Stepping::Dense, Stepping::Event, Stepping::Sharded, Stepping::EventSharded]
            [rng.range_usize(0..4)];
        spec.stepping = other;
        let twin = run_service(&spec).expect("generated specs are valid");
        assert_eq!(
            reference.fingerprint(),
            twin.fingerprint(),
            "active vs {other} diverged for {n} tenants"
        );
    });
}
